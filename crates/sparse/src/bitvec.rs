//! Packed bit vectors.
//!
//! GraphMat stores both the active-vertex set and the index part of its sparse
//! vectors as bit vectors (paper §4.4.2): a bit per vertex plus a dense value
//! array beats sorted `(index, value)` tuples because membership tests are O(1),
//! the bit array is small enough to stay cache resident, and it can be shared
//! read-only between all threads during the SpMV.
//!
//! Two variants are provided:
//!
//! * [`BitVec`] — single-owner bit vector with cheap word-level iteration.
//! * [`AtomicBitVec`] — concurrently writable bit vector used when multiple
//!   partitions may mark the same output vertex (e.g. the active set for the
//!   next superstep).

use std::sync::atomic::{AtomicU64, Ordering};

const WORD_BITS: usize = 64;

#[inline(always)]
fn word_index(bit: usize) -> (usize, u64) {
    (bit / WORD_BITS, 1u64 << (bit % WORD_BITS))
}

/// A fixed-length packed bit vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Create a bit vector of `len` bits, all cleared.
    pub fn new(len: usize) -> Self {
        BitVec {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Test bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, mask) = word_index(i);
        self.words[w] & mask != 0
    }

    /// Set bit `i` to 1. Returns the previous value.
    #[inline(always)]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, mask) = word_index(i);
        let prev = self.words[w] & mask != 0;
        self.words[w] |= mask;
        prev
    }

    /// Clear bit `i`.
    #[inline(always)]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, mask) = word_index(i);
        self.words[w] &= !mask;
    }

    /// Set bit `i` to `value`.
    #[inline(always)]
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Clear every bit without reallocating.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Set every bit.
    pub fn set_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = !0u64);
        self.mask_tail();
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if any bit is set.
    pub fn any(&self) -> bool {
        !self.none()
    }

    /// Iterate over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: &self.words,
            base: 0,
            len: self.len,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterate over the set bits whose word index lies in
    /// `word_start..word_end` — the unit the parallel SEND phase chunks the
    /// active set by, so that concurrent chunks never share a 64-bit word.
    pub fn iter_ones_in_words(&self, word_start: usize, word_end: usize) -> OnesIter<'_> {
        let end = word_end.min(self.words.len());
        let start = word_start.min(end);
        let words = &self.words[start..end];
        OnesIter {
            words,
            base: start * WORD_BITS,
            len: self.len,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }

    /// Overwrite this bit vector's contents from an [`AtomicBitVec`] of the
    /// same length, without allocating. This is how the runner recycles the
    /// active set between supersteps.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn load_from(&mut self, src: &AtomicBitVec) {
        assert_eq!(self.len, src.len, "BitVec length mismatch in load_from");
        for (dst, src) in self.words.iter_mut().zip(src.words.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
    }

    /// Bitwise OR another bit vector of the same length into `self`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch in union_with");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// Access the raw words (read-only). Mostly useful for tests and for the
    /// word-at-a-time fast paths in the SpMV kernel.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the raw words, for the sparse-vector writers that
    /// hand disjoint word ranges to different threads.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Zero out the bits beyond `len` in the last word so `count_ones` and
    /// iteration stay correct after `set_all`.
    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Iterator over set-bit indices of a [`BitVec`] (optionally restricted to a
/// word range, in which case `base` is the bit index of the first word).
pub struct OnesIter<'a> {
    words: &'a [u64],
    base: usize,
    len: usize,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.base + self.word_idx * WORD_BITS + tz;
                if idx < self.len {
                    return Some(idx);
                } else {
                    return None;
                }
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// A bit vector whose bits can be set concurrently from multiple threads.
///
/// Only `set` needs to be concurrent in GraphMat (threads mark vertices active
/// for the next superstep); reads happen after a synchronisation point, so a
/// relaxed ordering is sufficient.
#[derive(Debug)]
pub struct AtomicBitVec {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitVec {
    /// Create an atomic bit vector of `len` bits, all cleared.
    pub fn new(len: usize) -> Self {
        AtomicBitVec {
            words: (0..len.div_ceil(WORD_BITS))
                .map(|_| AtomicU64::new(0))
                .collect(),
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Atomically set bit `i`.
    #[inline(always)]
    pub fn set(&self, i: usize) {
        debug_assert!(i < self.len);
        let (w, mask) = word_index(i);
        self.words[w].fetch_or(mask, Ordering::Relaxed);
    }

    /// Test bit `i` (relaxed load — callers must synchronise externally).
    #[inline(always)]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, mask) = word_index(i);
        self.words[w].load(Ordering::Relaxed) & mask != 0
    }

    /// Convert into a plain [`BitVec`] (consumes the atomic storage).
    pub fn into_bitvec(self) -> BitVec {
        BitVec {
            words: self.words.into_iter().map(|w| w.into_inner()).collect(),
            len: self.len,
        }
    }

    /// Snapshot the current contents into a plain [`BitVec`].
    pub fn to_bitvec(&self) -> BitVec {
        BitVec {
            words: self
                .words
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            len: self.len,
        }
    }

    /// Clear all bits (not thread-safe with concurrent setters).
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }

    /// Number of set bits (relaxed snapshot).
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let bv = BitVec::new(130);
        assert_eq!(bv.len(), 130);
        assert_eq!(bv.count_ones(), 0);
        assert!(bv.none());
        assert!(!bv.any());
        for i in 0..130 {
            assert!(!bv.get(i));
        }
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bv = BitVec::new(200);
        for i in (0..200).step_by(7) {
            assert!(!bv.set(i));
        }
        for i in 0..200 {
            assert_eq!(bv.get(i), i % 7 == 0);
        }
        // setting again reports previous value
        assert!(bv.set(0));
        bv.clear(0);
        assert!(!bv.get(0));
        assert_eq!(bv.count_ones(), (0..200).step_by(7).count() - 1);
    }

    #[test]
    fn assign_sets_and_clears() {
        let mut bv = BitVec::new(10);
        bv.assign(3, true);
        assert!(bv.get(3));
        bv.assign(3, false);
        assert!(!bv.get(3));
    }

    #[test]
    fn iter_ones_matches_set_bits() {
        let mut bv = BitVec::new(300);
        let targets = [0usize, 1, 63, 64, 65, 127, 128, 255, 299];
        for &t in &targets {
            bv.set(t);
        }
        let got: Vec<usize> = bv.iter_ones().collect();
        assert_eq!(got, targets.to_vec());
    }

    #[test]
    fn set_all_respects_length() {
        let mut bv = BitVec::new(70);
        bv.set_all();
        assert_eq!(bv.count_ones(), 70);
        assert_eq!(bv.iter_ones().count(), 70);
        bv.clear_all();
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn union_with_merges() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(1);
        a.set(50);
        b.set(50);
        b.set(99);
        a.union_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 50, 99]);
    }

    #[test]
    #[should_panic]
    fn union_with_length_mismatch_panics() {
        let mut a = BitVec::new(10);
        let b = BitVec::new(11);
        a.union_with(&b);
    }

    #[test]
    fn empty_bitvec() {
        let bv = BitVec::new(0);
        assert!(bv.is_empty());
        assert_eq!(bv.iter_ones().count(), 0);
        assert!(bv.none());
    }

    #[test]
    fn atomic_bitvec_set_and_snapshot() {
        let abv = AtomicBitVec::new(128);
        abv.set(0);
        abv.set(64);
        abv.set(127);
        assert!(abv.get(0));
        assert!(abv.get(64));
        assert!(!abv.get(1));
        assert_eq!(abv.count_ones(), 3);
        let bv = abv.to_bitvec();
        assert_eq!(bv.iter_ones().collect::<Vec<_>>(), vec![0, 64, 127]);
        let bv2 = abv.into_bitvec();
        assert_eq!(bv, bv2);
    }

    #[test]
    fn iter_ones_in_words_matches_full_iteration() {
        let mut bv = BitVec::new(300);
        let targets = [0usize, 1, 63, 64, 65, 127, 128, 255, 299];
        for &t in &targets {
            bv.set(t);
        }
        // Any word-range split must partition the full iteration.
        for split in [0usize, 1, 2, 3, 4] {
            let lo: Vec<usize> = bv.iter_ones_in_words(0, split).collect();
            let hi: Vec<usize> = bv.iter_ones_in_words(split, bv.words().len()).collect();
            let mut all = lo;
            all.extend(hi);
            assert_eq!(all, targets.to_vec(), "split at word {split}");
        }
        // Out-of-range word bounds are clamped, not panicking.
        assert_eq!(bv.iter_ones_in_words(90, 100).count(), 0);
    }

    #[test]
    fn load_from_atomic_reuses_storage() {
        let mut bv = BitVec::new(130);
        bv.set(5);
        let abv = AtomicBitVec::new(130);
        abv.set(0);
        abv.set(64);
        abv.set(129);
        bv.load_from(&abv);
        assert_eq!(bv.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert!(!bv.get(5), "old contents must be overwritten");
    }

    #[test]
    #[should_panic]
    fn load_from_length_mismatch_panics() {
        let mut bv = BitVec::new(10);
        let abv = AtomicBitVec::new(11);
        bv.load_from(&abv);
    }

    #[test]
    fn atomic_bitvec_concurrent_sets() {
        use std::sync::Arc;
        let abv = Arc::new(AtomicBitVec::new(10_000));
        let mut handles = Vec::new();
        for t in 0..4 {
            let abv = Arc::clone(&abv);
            handles.push(std::thread::spawn(move || {
                for i in (t..10_000).step_by(4) {
                    abv.set(i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(abv.count_ones(), 10_000);
    }
}
