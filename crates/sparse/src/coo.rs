//! Coordinate (triplet) format matrix builder.
//!
//! Graphs arrive as edge lists — `(src, dst, value)` triples — and every other
//! format in this crate (CSR, CSC, DCSC) is built by first collecting triples
//! into a [`Coo`] and then sorting/compressing. The builder also hosts the
//! de-duplication and self-loop-removal passes that the paper applies during
//! pre-processing (§5.1).

use crate::{ix, Index};

/// A sparse matrix in coordinate (triplet) form.
///
/// Entries are not required to be sorted or unique until one of the
/// normalising methods ([`Coo::sort`], [`Coo::dedup_by`], …) is called.
#[derive(Clone, Debug, PartialEq)]
pub struct Coo<T> {
    nrows: Index,
    ncols: Index,
    entries: Vec<(Index, Index, T)>,
}

impl<T> Coo<T> {
    /// Create an empty matrix with the given dimensions.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Create an empty matrix with capacity for `cap` entries.
    pub fn with_capacity(nrows: Index, ncols: Index, cap: usize) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Create a matrix from an existing list of `(row, col, value)` triples.
    ///
    /// # Panics
    /// Panics (in debug builds) if any coordinate is out of range.
    pub fn from_entries(nrows: Index, ncols: Index, entries: Vec<(Index, Index, T)>) -> Self {
        debug_assert!(entries.iter().all(|&(r, c, _)| r < nrows && c < ncols));
        Coo {
            nrows,
            ncols,
            entries,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored entries (including duplicates, if any).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append an entry.
    ///
    /// # Panics
    /// Panics if the coordinates are out of range.
    pub fn push(&mut self, row: Index, col: Index, value: T) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row},{col}) out of bounds for {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col, value));
    }

    /// Read-only view of the triples.
    pub fn entries(&self) -> &[(Index, Index, T)] {
        &self.entries
    }

    /// Consume the matrix and return its triples.
    pub fn into_entries(self) -> Vec<(Index, Index, T)> {
        self.entries
    }

    /// Sort entries by `(row, col)`.
    pub fn sort(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
    }

    /// Sort entries by `(col, row)` — the order CSC/DCSC construction wants.
    pub fn sort_col_major(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (c, r));
    }

    /// Remove diagonal entries (graph self-loops).
    pub fn remove_self_loops(&mut self) {
        self.entries.retain(|&(r, c, _)| r != c);
    }

    /// Sort by `(row, col)` and merge duplicate coordinates with `combine`.
    ///
    /// `combine(existing, new)` returns the merged value; for graphs loaded
    /// from noisy edge lists this is typically "keep first" or "sum weights".
    pub fn dedup_by(&mut self, mut combine: impl FnMut(&T, &T) -> T) {
        self.sort();
        let mut out: Vec<(Index, Index, T)> = Vec::with_capacity(self.entries.len());
        for (r, c, v) in self.entries.drain(..) {
            match out.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => {
                    *lv = combine(lv, &v);
                }
                _ => out.push((r, c, v)),
            }
        }
        self.entries = out;
    }

    /// Transpose in place (swap rows and columns).
    pub fn transpose(&mut self) {
        std::mem::swap(&mut self.nrows, &mut self.ncols);
        for e in &mut self.entries {
            std::mem::swap(&mut e.0, &mut e.1);
        }
    }

    /// Map the values, keeping the structure.
    pub fn map<U>(self, mut f: impl FnMut(&T) -> U) -> Coo<U> {
        Coo {
            nrows: self.nrows,
            ncols: self.ncols,
            entries: self
                .entries
                .into_iter()
                .map(|(r, c, v)| (r, c, f(&v)))
                .collect(),
        }
    }

    /// Per-row number of entries. Used by the nnz-balancing partitioner.
    pub fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; ix(self.nrows)];
        for &(r, _, _) in &self.entries {
            counts[ix(r)] += 1;
        }
        counts
    }
}

impl<T: Clone> Coo<T> {
    /// Return a symmetrized copy: for every entry `(r, c, v)` with `r != c`,
    /// ensure `(c, r, v)` is also present. Duplicates are merged keeping the
    /// first value. This is the paper's BFS/TC pre-processing step
    /// ("replicate edges to obtain a symmetric graph", §5.1).
    pub fn symmetrized(&self) -> Coo<T> {
        let mut entries = Vec::with_capacity(self.entries.len() * 2);
        for (r, c, v) in &self.entries {
            entries.push((*r, *c, v.clone()));
            if r != c {
                entries.push((*c, *r, v.clone()));
            }
        }
        let mut out = Coo {
            nrows: self.nrows.max(self.ncols),
            ncols: self.nrows.max(self.ncols),
            entries,
        };
        out.dedup_by(|a, _| a.clone());
        out
    }

    /// Keep only strictly upper-triangular entries (`col > row`), producing a
    /// DAG. This is the paper's Triangle Counting pre-processing step
    /// ("discard the edges in the lower triangle", §5.1).
    pub fn upper_triangle(&self) -> Coo<T> {
        Coo {
            nrows: self.nrows,
            ncols: self.ncols,
            entries: self
                .entries
                .iter()
                .filter(|&&(r, c, _)| c > r)
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f32> {
        let mut m = Coo::new(4, 4);
        m.push(0, 1, 1.0);
        m.push(1, 2, 2.0);
        m.push(2, 0, 3.0);
        m.push(2, 2, 4.0); // self loop
        m.push(0, 1, 5.0); // duplicate
        m
    }

    #[test]
    fn push_and_counts() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 4);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic]
    fn push_out_of_bounds_panics() {
        let mut m: Coo<f32> = Coo::new(2, 2);
        m.push(2, 0, 1.0);
    }

    #[test]
    fn remove_self_loops_drops_diagonal() {
        let mut m = sample();
        m.remove_self_loops();
        assert_eq!(m.nnz(), 4);
        assert!(m.entries().iter().all(|&(r, c, _)| r != c));
    }

    #[test]
    fn dedup_merges_duplicates() {
        let mut m = sample();
        m.dedup_by(|a, b| a + b);
        assert_eq!(m.nnz(), 4);
        let merged = m
            .entries()
            .iter()
            .find(|&&(r, c, _)| r == 0 && c == 1)
            .unwrap();
        assert_eq!(merged.2, 6.0);
    }

    #[test]
    fn dedup_keep_first() {
        let mut m = sample();
        m.dedup_by(|a, _| *a);
        let merged = m
            .entries()
            .iter()
            .find(|&&(r, c, _)| r == 0 && c == 1)
            .unwrap();
        assert_eq!(merged.2, 1.0);
    }

    #[test]
    fn sort_orders_row_major() {
        let mut m = sample();
        m.sort();
        let coords: Vec<(u32, u32)> = m.entries().iter().map(|&(r, c, _)| (r, c)).collect();
        let mut sorted = coords.clone();
        sorted.sort();
        assert_eq!(coords, sorted);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut m = sample();
        m.transpose();
        assert!(m.entries().iter().any(|&(r, c, _)| r == 1 && c == 0));
        assert_eq!(m.nrows(), 4);
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let m = sample();
        let s = m.symmetrized();
        // (0,1) implies (1,0)
        assert!(s.entries().iter().any(|&(r, c, _)| r == 1 && c == 0));
        // no duplicate coordinates
        let mut coords: Vec<(u32, u32)> = s.entries().iter().map(|&(r, c, _)| (r, c)).collect();
        let before = coords.len();
        coords.sort();
        coords.dedup();
        assert_eq!(before, coords.len());
    }

    #[test]
    fn upper_triangle_is_dag() {
        let m = sample().symmetrized();
        let u = m.upper_triangle();
        assert!(u.entries().iter().all(|&(r, c, _)| c > r));
    }

    #[test]
    fn row_counts_counts_entries() {
        let m = sample();
        let counts = m.row_counts();
        assert_eq!(counts, vec![2, 1, 2, 0]);
    }

    #[test]
    fn map_preserves_structure() {
        let m = sample().map(|v| *v as i64);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.entries()[0].2, 1i64);
    }
}
