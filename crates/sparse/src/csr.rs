//! Compressed Sparse Row (and Column) matrices.
//!
//! CSR is the format the paper's *native, hand-optimized* baselines use
//! (§5.2.2): a row-pointer array, a column-index array and a value array.
//! It is also the substrate for the SpGEMM kernel in [`crate::spmm`].
//!
//! A CSC matrix is simply the CSR of the transpose, so a single type serves
//! both; [`Csr::transposed`] produces the other orientation.

use crate::coo::Coo;
use crate::{ix, Index};

/// An immutable sparse matrix in Compressed Sparse Row format.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<T> {
    nrows: Index,
    ncols: Index,
    row_ptr: Vec<usize>,
    col_idx: Vec<Index>,
    values: Vec<T>,
}

impl<T: Clone> Csr<T> {
    /// Build from a COO matrix. Duplicate coordinates are kept as separate
    /// entries; call [`Coo::dedup_by`] first if that is not wanted.
    pub fn from_coo(coo: &Coo<T>) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let nnz = coo.nnz();
        let mut row_counts = vec![0usize; ix(nrows) + 1];
        for &(r, _, _) in coo.entries() {
            row_counts[ix(r) + 1] += 1;
        }
        for i in 1..row_counts.len() {
            row_counts[i] += row_counts[i - 1];
        }
        let row_ptr = row_counts.clone();
        let mut next = row_counts;
        let mut col_idx = vec![0 as Index; nnz];
        let mut values: Vec<Option<T>> = vec![None; nnz];
        for (r, c, v) in coo.entries() {
            let slot = next[ix(*r)];
            col_idx[slot] = *c;
            values[slot] = Some(v.clone());
            next[ix(*r)] += 1;
        }
        let mut csr = Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values: values
                .into_iter()
                // audit:allow(no-unwrap): counting-sort invariant — every
                // slot between the row pointers was filled by the scatter
                // loop above.
                .map(|v| v.expect("slot filled"))
                .collect(),
        };
        csr.sort_rows();
        csr
    }

    /// Sort the column indices (and values) within each row.
    fn sort_rows(&mut self) {
        for r in 0..ix(self.nrows) {
            let start = self.row_ptr[r];
            let end = self.row_ptr[r + 1];
            // extract, sort, write back — rows are short so this is cheap
            let mut entries: Vec<(Index, T)> = self.col_idx[start..end]
                .iter()
                .copied()
                .zip(self.values[start..end].iter().cloned())
                .collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            for (i, (c, v)) in entries.into_iter().enumerate() {
                self.col_idx[start + i] = c;
                self.values[start + i] = v;
            }
        }
    }

    /// Build the transpose (i.e. the CSC view of this matrix, stored as CSR).
    pub fn transposed(&self) -> Csr<T> {
        let mut coo = Coo::with_capacity(self.ncols, self.nrows, self.nnz());
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                coo.push(*c, r, v.clone());
            }
        }
        Csr::from_coo(&coo)
    }
}

impl<T> Csr<T> {
    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The column indices and values of row `r`.
    #[inline(always)]
    pub fn row(&self, r: Index) -> (&[Index], &[T]) {
        let start = self.row_ptr[ix(r)];
        let end = self.row_ptr[ix(r) + 1];
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Number of entries in row `r` (the out-degree when rows are sources).
    #[inline(always)]
    pub fn row_nnz(&self, r: Index) -> usize {
        self.row_ptr[ix(r) + 1] - self.row_ptr[ix(r)]
    }

    /// Out-degree of every row as a vector.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.nrows).map(|r| self.row_nnz(r)).collect()
    }

    /// Raw row-pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column-index array.
    pub fn col_idx(&self) -> &[Index] {
        &self.col_idx
    }

    /// Raw value array.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterate over all entries as `(row, col, &value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, &T)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(c, v)| (r, *c, v))
        })
    }

    /// `true` if entry `(r, c)` is present (binary search within the row).
    pub fn contains(&self, r: Index, c: Index) -> bool {
        let (cols, _) = self.row(r);
        cols.binary_search(&c).is_ok()
    }

    /// Get a reference to the value at `(r, c)` if present.
    pub fn get(&self, r: Index, c: Index) -> Option<&T> {
        let start = self.row_ptr[ix(r)];
        let (cols, _) = self.row(r);
        cols.binary_search(&c)
            .ok()
            .map(|offset| &self.values[start + offset])
    }
}

impl<T: Clone + Default + PartialEq> Csr<T> {
    /// Expand to a dense row-major matrix. Only intended for tests and tiny
    /// reference computations.
    pub fn to_dense(&self) -> Vec<Vec<T>> {
        let mut dense = vec![vec![T::default(); ix(self.ncols)]; ix(self.nrows)];
        for (r, c, v) in self.iter() {
            dense[ix(r)][ix(c)] = v.clone();
        }
        dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> Coo<f64> {
        //     0    1    2    3
        // 0 [ .   1.0  .   2.0 ]
        // 1 [ 3.0  .   .    .  ]
        // 2 [ .   4.0 5.0   .  ]
        // 3 [ .    .   .    .  ]
        let mut m = Coo::new(4, 4);
        m.push(0, 3, 2.0);
        m.push(0, 1, 1.0);
        m.push(1, 0, 3.0);
        m.push(2, 2, 5.0);
        m.push(2, 1, 4.0);
        m
    }

    #[test]
    fn from_coo_builds_sorted_rows() {
        let csr = Csr::from_coo(&sample_coo());
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.row(0), (&[1u32, 3][..], &[1.0, 2.0][..]));
        assert_eq!(csr.row(1), (&[0u32][..], &[3.0][..]));
        assert_eq!(csr.row(2), (&[1u32, 2][..], &[4.0, 5.0][..]));
        assert_eq!(csr.row(3).0.len(), 0);
    }

    #[test]
    fn row_nnz_and_degrees() {
        let csr = Csr::from_coo(&sample_coo());
        assert_eq!(csr.row_nnz(0), 2);
        assert_eq!(csr.row_nnz(3), 0);
        assert_eq!(csr.degrees(), vec![2, 1, 2, 0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let csr = Csr::from_coo(&sample_coo());
        let t = csr.transposed();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.get(3, 0), Some(&2.0));
        assert_eq!(t.get(1, 0), Some(&1.0));
        let back = t.transposed();
        assert_eq!(back, csr);
    }

    #[test]
    fn contains_and_get() {
        let csr = Csr::from_coo(&sample_coo());
        assert!(csr.contains(0, 1));
        assert!(!csr.contains(0, 0));
        assert_eq!(csr.get(2, 2), Some(&5.0));
        assert_eq!(csr.get(3, 3), None);
    }

    #[test]
    fn iter_visits_all_entries() {
        let csr = Csr::from_coo(&sample_coo());
        let entries: Vec<(u32, u32, f64)> = csr.iter().map(|(r, c, v)| (r, c, *v)).collect();
        assert_eq!(entries.len(), 5);
        assert!(entries.contains(&(2, 1, 4.0)));
    }

    #[test]
    fn to_dense_matches() {
        let csr = Csr::from_coo(&sample_coo());
        let d = csr.to_dense();
        assert_eq!(d[0][1], 1.0);
        assert_eq!(d[0][3], 2.0);
        assert_eq!(d[1][0], 3.0);
        assert_eq!(d[3][3], 0.0);
    }

    #[test]
    fn empty_matrix() {
        let coo: Coo<f64> = Coo::new(3, 3);
        let csr = Csr::from_coo(&coo);
        assert_eq!(csr.nnz(), 0);
        for r in 0..3 {
            assert_eq!(csr.row_nnz(r), 0);
        }
    }
}
