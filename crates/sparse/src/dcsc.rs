//! Doubly Compressed Sparse Column (DCSC) matrices.
//!
//! DCSC (Buluç & Gilbert, IPDPS 2008) is the format GraphMat stores its
//! transposed adjacency matrix in (paper §4.4.1). Compared to CSC it also
//! compresses the *column pointer* array: only columns that contain at least
//! one non-zero are represented, which matters once the matrix is split into
//! many row partitions — each partition is hypersparse (most columns empty),
//! and a plain CSC would spend `O(ncols)` memory per partition.
//!
//! The representation uses the paper's four arrays:
//!
//! * `jc`  — indices of the non-empty columns, ascending;
//! * `cp`  — for non-empty column `jc[i]`, its entries live at
//!   `ir[cp[i]..cp[i+1]]` (so `cp.len() == jc.len() + 1`);
//! * `ir`  — row indices of the non-zeros;
//! * `values` — the non-zero values, parallel to `ir`.
//!
//! The optional auxiliary index described in the paper (used to accelerate
//! random column lookup) is not needed here because the SpMV only ever walks
//! the non-empty columns in order, exactly as the paper notes.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::Index;

/// A sparse matrix in Doubly Compressed Sparse Column format.
#[derive(Clone, Debug, PartialEq)]
pub struct Dcsc<T> {
    nrows: Index,
    ncols: Index,
    jc: Vec<Index>,
    cp: Vec<usize>,
    ir: Vec<Index>,
    values: Vec<T>,
}

impl<T: Clone> Dcsc<T> {
    /// Build from a COO matrix (duplicates kept; dedup beforehand if needed).
    pub fn from_coo(coo: &Coo<T>) -> Self {
        let mut entries: Vec<(Index, Index, T)> = coo.entries().to_vec();
        // column-major order: group by column, rows ascending inside a column
        entries.sort_unstable_by_key(|&(r, c, _)| (c, r));
        Self::from_col_sorted(coo.nrows(), coo.ncols(), &entries)
    }

    /// Build from entries already sorted by `(col, row)`.
    ///
    /// This is the workhorse used by the partitioner, which buckets a graph's
    /// edges into row ranges and builds one DCSC per range.
    pub fn from_col_sorted(nrows: Index, ncols: Index, entries: &[(Index, Index, T)]) -> Self {
        debug_assert!(entries
            .windows(2)
            .all(|w| (w[0].1, w[0].0) <= (w[1].1, w[1].0)));
        let nnz = entries.len();
        let mut jc: Vec<Index> = Vec::new();
        let mut cp: Vec<usize> = Vec::new();
        let mut ir: Vec<Index> = Vec::with_capacity(nnz);
        let mut values: Vec<T> = Vec::with_capacity(nnz);

        let mut current_col: Option<Index> = None;
        for (r, c, v) in entries {
            debug_assert!(*r < nrows && *c < ncols);
            if current_col != Some(*c) {
                jc.push(*c);
                cp.push(ir.len());
                current_col = Some(*c);
            }
            ir.push(*r);
            values.push(v.clone());
        }
        cp.push(ir.len());
        if jc.is_empty() {
            // keep the invariant cp.len() == jc.len() + 1 even when empty
            cp = vec![0];
        }
        Dcsc {
            nrows,
            ncols,
            jc,
            cp,
            ir,
            values,
        }
    }

    /// Build the DCSC of a CSR matrix's transpose — i.e. store `Aᵀ` while
    /// reading `A`. Handy because graphs are naturally edge lists (row = src).
    pub fn transpose_of_csr(csr: &Csr<T>) -> Self {
        // The transpose's column j is A's row j, already sorted by column
        // (= transpose's row) because Csr keeps rows sorted.
        let mut entries: Vec<(Index, Index, T)> = Vec::with_capacity(csr.nnz());
        for r in 0..csr.nrows() {
            let (cols, vals) = csr.row(r);
            for (c, v) in cols.iter().zip(vals) {
                // entry (r, c) of A becomes (c, r) of Aᵀ: row = c, col = r
                entries.push((*c, r, v.clone()));
            }
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (c, r));
        Self::from_col_sorted(csr.ncols(), csr.nrows(), &entries)
    }
}

impl<T> Dcsc<T> {
    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.ir.len()
    }

    /// Number of non-empty columns.
    pub fn n_nonempty_cols(&self) -> usize {
        self.jc.len()
    }

    /// The non-empty column indices, ascending.
    pub fn col_indices(&self) -> &[Index] {
        &self.jc
    }

    /// Iterate over non-empty columns as `(col, row_indices, values)`.
    #[inline]
    pub fn iter_cols(&self) -> impl Iterator<Item = (Index, &[Index], &[T])> + '_ {
        self.jc.iter().enumerate().map(move |(i, &col)| {
            let start = self.cp[i];
            let end = self.cp[i + 1];
            (col, &self.ir[start..end], &self.values[start..end])
        })
    }

    /// The rows and values of the `i`-th non-empty column (by position in
    /// `jc`, not by column id).
    #[inline(always)]
    pub fn nonempty_col(&self, i: usize) -> (Index, &[Index], &[T]) {
        let start = self.cp[i];
        let end = self.cp[i + 1];
        (self.jc[i], &self.ir[start..end], &self.values[start..end])
    }

    /// Look up a column by id (binary search over `jc`), returning its rows
    /// and values if it is non-empty.
    pub fn col(&self, c: Index) -> Option<(&[Index], &[T])> {
        self.jc.binary_search(&c).ok().map(|i| {
            let start = self.cp[i];
            let end = self.cp[i + 1];
            (&self.ir[start..end], &self.values[start..end])
        })
    }

    /// Iterate over all entries as `(row, col, &value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, &T)> + '_ {
        self.iter_cols()
            .flat_map(|(c, rows, vals)| rows.iter().zip(vals).map(move |(r, v)| (*r, c, v)))
    }

    /// Memory footprint of the index structures in bytes (excludes values).
    /// Used by tests to check the hypersparse advantage over CSC.
    pub fn index_bytes(&self) -> usize {
        self.jc.len() * std::mem::size_of::<Index>()
            + self.cp.len() * std::mem::size_of::<usize>()
            + self.ir.len() * std::mem::size_of::<Index>()
    }

    /// Total memory footprint in bytes: indices plus the stored edge values.
    ///
    /// For an unweighted matrix (`T = ()`) the value term is zero, so
    /// `bytes() == index_bytes()` — the zero-cost fast path this crate's
    /// generic edge typing exists for.
    pub fn bytes(&self) -> usize {
        self.index_bytes() + self.values.len() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> Coo<i32> {
        // 5x5, entries (row, col): (0,1) (2,1) (4,1) (1,3) (3,3) (0,4)
        let mut m = Coo::new(5, 5);
        m.push(0, 1, 10);
        m.push(2, 1, 20);
        m.push(4, 1, 30);
        m.push(1, 3, 40);
        m.push(3, 3, 50);
        m.push(0, 4, 60);
        m
    }

    #[test]
    fn from_coo_compresses_columns() {
        let d = Dcsc::from_coo(&sample_coo());
        assert_eq!(d.nnz(), 6);
        assert_eq!(d.n_nonempty_cols(), 3);
        assert_eq!(d.col_indices(), &[1, 3, 4]);
    }

    #[test]
    fn iter_cols_yields_sorted_rows() {
        let d = Dcsc::from_coo(&sample_coo());
        let cols: Vec<(u32, Vec<u32>, Vec<i32>)> = d
            .iter_cols()
            .map(|(c, rows, vals)| (c, rows.to_vec(), vals.to_vec()))
            .collect();
        assert_eq!(cols[0], (1, vec![0, 2, 4], vec![10, 20, 30]));
        assert_eq!(cols[1], (3, vec![1, 3], vec![40, 50]));
        assert_eq!(cols[2], (4, vec![0], vec![60]));
    }

    #[test]
    fn col_lookup() {
        let d = Dcsc::from_coo(&sample_coo());
        assert!(d.col(0).is_none());
        assert!(d.col(2).is_none());
        let (rows, vals) = d.col(3).unwrap();
        assert_eq!(rows, &[1, 3]);
        assert_eq!(vals, &[40, 50]);
    }

    #[test]
    fn iter_matches_coo_entries() {
        let coo = sample_coo();
        let d = Dcsc::from_coo(&coo);
        let mut from_dcsc: Vec<(u32, u32, i32)> = d.iter().map(|(r, c, v)| (r, c, *v)).collect();
        let mut from_coo: Vec<(u32, u32, i32)> =
            coo.entries().iter().map(|&(r, c, v)| (r, c, v)).collect();
        from_dcsc.sort();
        from_coo.sort();
        assert_eq!(from_dcsc, from_coo);
    }

    #[test]
    fn empty_matrix_has_empty_structure() {
        let coo: Coo<i32> = Coo::new(10, 10);
        let d = Dcsc::from_coo(&coo);
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.n_nonempty_cols(), 0);
        assert_eq!(d.iter_cols().count(), 0);
        assert!(d.col(5).is_none());
    }

    #[test]
    fn transpose_of_csr_matches_manual_transpose() {
        let coo = sample_coo();
        let csr = Csr::from_coo(&coo);
        let dt = Dcsc::transpose_of_csr(&csr);
        // Aᵀ has entry (c, r) for every A entry (r, c)
        let mut expect: Vec<(u32, u32, i32)> =
            coo.entries().iter().map(|&(r, c, v)| (c, r, v)).collect();
        expect.sort();
        let mut got: Vec<(u32, u32, i32)> = dt.iter().map(|(r, c, v)| (r, c, *v)).collect();
        got.sort();
        assert_eq!(got, expect);
        assert_eq!(dt.nrows(), 5);
        assert_eq!(dt.ncols(), 5);
    }

    #[test]
    fn unweighted_values_cost_zero_bytes() {
        let coo = sample_coo();
        let weighted = Dcsc::from_coo(&coo);
        let unweighted = Dcsc::from_coo(&coo.clone().map(|_| ()));
        assert_eq!(unweighted.nnz(), weighted.nnz());
        assert_eq!(unweighted.bytes(), unweighted.index_bytes());
        assert_eq!(
            weighted.bytes(),
            weighted.index_bytes() + weighted.nnz() * std::mem::size_of::<i32>()
        );
    }

    #[test]
    fn hypersparse_index_is_compact() {
        // one entry in a huge matrix: DCSC index cost must not scale with ncols
        let mut coo: Coo<i32> = Coo::new(1_000_000, 1_000_000);
        coo.push(12, 999_999, 7);
        let d = Dcsc::from_coo(&coo);
        assert_eq!(d.n_nonempty_cols(), 1);
        assert!(d.index_bytes() < 64);
    }
}
