//! Sparse matrix substrate for GraphMat.
//!
//! This crate implements everything the GraphMat paper's backend needs, from
//! scratch:
//!
//! * [`coo`] — coordinate-format triple builder used while assembling graphs.
//! * [`csr`] — immutable Compressed Sparse Row / Column matrices (used by the
//!   hand-optimized native baselines and by SpGEMM).
//! * [`dcsc`] — the Doubly Compressed Sparse Column format of Buluç & Gilbert
//!   that GraphMat stores its (transposed) adjacency matrix in (paper §4.4.1).
//! * [`bitvec`] — packed bit vectors, including an atomically updatable variant,
//!   used for the active-vertex set and the sparse-vector index (paper §4.4.2).
//! * [`spvec`] — sparse vectors: the bitvector-backed representation the paper
//!   selects, and the sorted-tuple representation it rejects (kept for the
//!   Figure 7 ablation).
//! * [`semiring`] — generalized multiply/add pairs; graph traversals are SpMV
//!   over a user-chosen semiring (paper §2, §4.2).
//! * [`partition`] — 1-D row partitioning of the matrix into many more
//!   partitions than threads, enabling dynamic load balancing (paper §4.5).
//! * [`parallel`] — a small scoped-thread executor with an atomic work queue,
//!   the analogue of OpenMP `schedule(dynamic)` used by the paper.
//! * [`pull`] — row-major CSR mirrors of the partitioned DCSC, the structure
//!   the dense-pull backend traverses (direction optimization à la Beamer /
//!   GraphBLAST).
//! * [`spmv`] — sequential and partition-parallel *generalized* sparse
//!   matrix–sparse vector multiplication (paper Algorithm 1), plus the
//!   row-parallel dense-pull kernel.
//! * [`spmm`] — (masked) sparse matrix–matrix multiplication, needed by the
//!   CombBLAS-style triangle-counting baseline.
//! * [`overlay`] — sorted delta overlays (pending edge edits) and the merged
//!   `base ⊕ overlay` SpMV used by the streaming-update layer; reduction
//!   order matches a from-scratch rebuild bit for bit.
//!
//! The crate is deliberately free of graph-level concepts: it only knows about
//! matrices, vectors and partitions. `graphmat-core` builds the vertex-program
//! abstraction on top of it.
//!
//! Building with `--features shard-check` compiles in the `shard_check` module, a
//! dynamic detector that shadows every disjoint-write protocol (sharded
//! merges, word-range fills, result slots) with atomic claim maps and turns
//! an ownership violation into a deterministic panic with lane-id
//! diagnostics. The feature is for tests and CI; release benchmarks build
//! without it.

pub mod bitvec;
pub mod coo;
pub mod csr;
pub mod dcsc;
pub mod overlay;
pub mod parallel;
pub mod partition;
pub mod pull;
pub mod semiring;
#[cfg(feature = "shard-check")]
pub mod shard_check;
pub mod spmm;
pub mod spmv;
pub mod spvec;

/// Index type used for row/column (vertex) identifiers.
///
/// The paper's graphs fit comfortably in 32 bits (largest is 63M vertices);
/// using `u32` halves index memory traffic, which matters for a
/// bandwidth-bound kernel like SpMV.
pub type Index = u32;

/// Convert an [`Index`] to a `usize` for slice indexing.
#[inline(always)]
pub fn ix(i: Index) -> usize {
    i as usize
}
