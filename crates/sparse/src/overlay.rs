//! Delta overlays: a small sorted edit set applied on top of a
//! [`PartitionedDcsc`] during SpMV, without rebuilding the matrix.
//!
//! A streaming graph accumulates edge insertions, weight updates and
//! deletions between compactions. Rebuilding the DCSC per batch would cost
//! O(E log E); instead the pending edits live in an [`Overlay`] — a
//! column-major, partition-aligned structure holding at most **one**
//! [`OverlayOp`] per `(row, col)` coordinate — and
//! [`gspmv_overlay_into`] runs Algorithm 1 over `base ⊕ overlay` with a
//! merged two-pointer column walk.
//!
//! The walk preserves the push kernel's reduction-order contract: products
//! arrive at each destination row in **ascending source (column) order**,
//! exactly as they would from a matrix rebuilt from the edited edge list.
//! Since the generalized add may be a non-associative floating-point sum,
//! this is what makes overlay results bit-for-bit identical to a
//! from-scratch rebuild (for bases without duplicate coordinates; an op on
//! a duplicated coordinate masks *all* stored copies).
//!
//! The overlay mirrors the base's row partitioning one-to-one, so the
//! parallel path reuses the disjoint-row-range writer of
//! [`crate::spmv::gspmv_into`] unchanged.

use crate::parallel::Executor;
use crate::partition::{PartitionedDcsc, RowRange};
use crate::spvec::{MessageVector, SparseVector};
use crate::Index;

/// One pending edit at a matrix coordinate.
#[derive(Clone, Debug, PartialEq)]
pub enum OverlayOp<T> {
    /// Insert the entry, or replace every stored copy of it, with this value.
    Upsert(T),
    /// Remove every stored copy of the entry (a no-op if absent).
    Delete,
}

/// The edits owned by one row partition, in DCSC-shaped column-major order.
#[derive(Clone, Debug)]
struct OverlayPartition<T> {
    /// Non-empty column ids, ascending.
    cols: Vec<Index>,
    /// `col_ptr[i]..col_ptr[i+1]` indexes the entries of `cols[i]`.
    col_ptr: Vec<usize>,
    /// Row ids per column, ascending, unique within a column.
    rows: Vec<Index>,
    /// The op at each `(row, col)` coordinate.
    ops: Vec<OverlayOp<T>>,
}

/// A sorted set of pending edits aligned to a base matrix's row partitions.
///
/// Build one with [`Overlay::from_entries`] from resolved `(row, col, op)`
/// triples — **at most one op per coordinate**; a delta log resolves
/// duplicates to latest-wins before building. The partition ranges must be
/// exactly the base matrix's ranges so the two structures can be swept
/// together partition by partition.
#[derive(Clone, Debug)]
pub struct Overlay<T> {
    nrows: Index,
    ncols: Index,
    ranges: Vec<RowRange>,
    partitions: Vec<OverlayPartition<T>>,
    n_upserts: usize,
}

impl<T> Overlay<T> {
    /// Build an overlay from resolved edit triples, bucketed and sorted to
    /// align with the base matrix's row partitioning.
    ///
    /// # Panics
    /// Panics if `ranges` is empty or not contiguous over `0..nrows`, if a
    /// coordinate is out of range, or (in debug builds) if two entries share
    /// a coordinate.
    pub fn from_entries(
        nrows: Index,
        ncols: Index,
        ranges: &[RowRange],
        entries: Vec<(Index, Index, OverlayOp<T>)>,
    ) -> Self {
        assert!(!ranges.is_empty(), "at least one partition range required");
        assert_eq!(ranges[0].start, 0, "ranges must start at row 0");
        assert_eq!(
            ranges[ranges.len() - 1].end,
            nrows,
            "ranges must cover all rows"
        );
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
        for &(r, c, _) in &entries {
            assert!(
                r < nrows && c < ncols,
                "overlay entry ({r},{c}) out of bounds for {nrows}x{ncols} matrix"
            );
        }

        // Bucket rows into partitions by binary search over range starts,
        // the same scheme PartitionedDcsc::from_coo uses.
        let starts: Vec<Index> = ranges.iter().map(|r| r.start).collect();
        let mut buckets: Vec<Vec<(Index, Index, OverlayOp<T>)>> =
            (0..ranges.len()).map(|_| Vec::new()).collect();
        let mut n_upserts = 0usize;
        for (r, c, op) in entries {
            if matches!(op, OverlayOp::Upsert(_)) {
                n_upserts += 1;
            }
            let p = match starts.binary_search(&r) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            buckets[p].push((r, c, op));
        }

        let partitions = buckets
            .into_iter()
            .map(|mut bucket| {
                bucket.sort_unstable_by_key(|&(r, c, _)| (c, r));
                debug_assert!(
                    bucket
                        .windows(2)
                        .all(|w| (w[0].1, w[0].0) != (w[1].1, w[1].0)),
                    "at most one op per (row, col) coordinate"
                );
                let mut cols = Vec::new();
                let mut col_ptr = vec![0usize];
                let mut rows = Vec::with_capacity(bucket.len());
                let mut ops = Vec::with_capacity(bucket.len());
                for (r, c, op) in bucket {
                    if cols.last() != Some(&c) {
                        cols.push(c);
                        col_ptr.push(rows.len());
                    }
                    rows.push(r);
                    ops.push(op);
                    let last = col_ptr.len() - 1;
                    col_ptr[last] = rows.len();
                }
                OverlayPartition {
                    cols,
                    col_ptr,
                    rows,
                    ops,
                }
            })
            .collect();

        Overlay {
            nrows,
            ncols,
            ranges: ranges.to_vec(),
            partitions,
            n_upserts,
        }
    }

    /// Number of rows of the (virtual) edited matrix.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns of the (virtual) edited matrix.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Total number of pending ops.
    pub fn nnz(&self) -> usize {
        self.partitions.iter().map(|p| p.rows.len()).sum()
    }

    /// Number of upsert ops (the rest are deletes).
    pub fn n_upserts(&self) -> usize {
        self.n_upserts
    }

    /// `true` if there are no pending ops.
    pub fn is_empty(&self) -> bool {
        self.partitions.iter().all(|p| p.rows.is_empty())
    }

    /// Number of partitions (equals the base matrix's).
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The row ranges the overlay was bucketed by.
    pub fn ranges(&self) -> &[RowRange] {
        &self.ranges
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| {
                p.cols.len() * std::mem::size_of::<Index>()
                    + p.col_ptr.len() * std::mem::size_of::<usize>()
                    + p.rows.len() * std::mem::size_of::<Index>()
                    + p.ops.len() * std::mem::size_of::<OverlayOp<T>>()
            })
            .sum::<usize>()
            + self.ranges.len() * std::mem::size_of::<RowRange>()
    }

    /// Assert that this overlay is aligned with `base`: same shape and the
    /// exact same row partitioning (the soundness condition for the shared
    /// disjoint-row-range output writer).
    fn check_aligned<E>(&self, base: &PartitionedDcsc<E>) {
        assert_eq!(self.nrows, base.nrows(), "overlay/base row count mismatch");
        assert_eq!(self.ncols, base.ncols(), "overlay/base col count mismatch");
        assert_eq!(
            self.partitions.len(),
            base.n_partitions(),
            "overlay/base partition count mismatch"
        );
        for (range, part) in self.ranges.iter().zip(base.partitions()) {
            assert_eq!(
                (range.start, range.end),
                (part.rows.start, part.rows.end),
                "overlay/base partition ranges mismatch"
            );
        }
    }
}

/// Generalized SpMV over `base ⊕ overlay`, writing into a caller-provided
/// output vector — the overlay-aware twin of [`crate::spmv::gspmv_into`].
///
/// Per destination row, products are folded in ascending source (column)
/// order with deleted entries skipped and upserted entries multiplied in
/// their sorted position — bit-for-bit what [`crate::spmv::gspmv_into`]
/// produces on a matrix rebuilt from the edited edge list. Like the plain
/// kernel this never allocates, and an empty overlay adds only one pointer
/// comparison per non-empty base column.
///
/// # Panics
/// Panics if `overlay` is not aligned with `base` (shape and row
/// partitioning must match exactly) or `y` has the wrong length.
pub fn gspmv_overlay_into<X, E, Y, V, M, A>(
    base: &PartitionedDcsc<E>,
    overlay: &Overlay<E>,
    x: &V,
    multiply: &M,
    add: &A,
    executor: &Executor,
    y: &mut SparseVector<Y>,
) where
    V: MessageVector<X> + Sync,
    X: Sync,
    E: Sync,
    Y: Clone + Default + Send,
    M: Fn(&X, &E, Index) -> Y + Sync,
    A: Fn(&mut Y, Y) + Sync,
{
    assert_eq!(
        y.len(),
        base.nrows() as usize,
        "output vector length must match the matrix row count"
    );
    overlay.check_aligned(base);
    y.clear();
    if x.nnz() == 0 {
        return;
    }
    let nparts = base.n_partitions();
    if executor.nthreads() == 1 || nparts == 1 {
        for p in 0..nparts {
            walk_columns_overlay(
                &base.partition(p).matrix,
                &overlay.partitions[p],
                x,
                multiply,
                |k, product| y.merge(k, product, |acc, v| add(acc, v)),
            );
        }
        return;
    }

    let shards = y.sharded();
    executor.for_each_dynamic(nparts, |p| {
        let part = base.partition(p);
        let mut newly_set = 0usize;
        walk_columns_overlay(
            &part.matrix,
            &overlay.partitions[p],
            x,
            multiply,
            |k, product| {
                // SAFETY: the overlay partitioning equals the base's
                // (checked above), so partitions own disjoint row ranges and
                // row `k` is merged by this task only — the same argument
                // that makes `gspmv_into` sound.
                unsafe { shards.merge(k, product, &mut newly_set, |acc, v| add(acc, v)) };
            },
        );
        shards.commit(newly_set);
    });
    drop(shards); // folds the per-task counts into y's nnz
}

/// The merged Algorithm-1 column walk: two-pointer sweep over the base
/// partition's non-empty columns and the overlay's, emitting `(row, product)`
/// pairs in exactly the order a rebuilt matrix would.
#[inline(always)]
fn walk_columns_overlay<X, E, Y, V, M>(
    base: &crate::dcsc::Dcsc<E>,
    overlay: &OverlayPartition<E>,
    x: &V,
    multiply: &M,
    mut sink: impl FnMut(Index, Y),
) where
    V: MessageVector<X>,
    M: Fn(&X, &E, Index) -> Y,
{
    let nb = base.n_nonempty_cols();
    let no = overlay.cols.len();
    if no == 0 {
        // Empty overlay: fall through to the plain column walk — the
        // steady-state serving path pays only this one comparison.
        for (j, rows, edges) in base.iter_cols() {
            if let Some(xj) = x.get(j) {
                for (k, e) in rows.iter().zip(edges) {
                    sink(*k, multiply(xj, e, *k));
                }
            }
        }
        return;
    }

    let mut bi = 0usize;
    let mut oi = 0usize;
    while bi < nb || oi < no {
        let bcol = if bi < nb {
            Some(base.nonempty_col(bi).0)
        } else {
            None
        };
        let ocol = if oi < no {
            Some(overlay.cols[oi])
        } else {
            None
        };
        match (bcol, ocol) {
            (Some(bj), oj) if oj.is_none() || bj < oj.unwrap_or(Index::MAX) => {
                // Base-only column: emit its entries unchanged.
                let (j, rows, edges) = base.nonempty_col(bi);
                if let Some(xj) = x.get(j) {
                    for (k, e) in rows.iter().zip(edges) {
                        sink(*k, multiply(xj, e, *k));
                    }
                }
                bi += 1;
            }
            (bj, Some(oj)) if bj.is_none() || oj < bj.unwrap_or(Index::MAX) => {
                // Overlay-only column: upserts are fresh entries, deletes
                // target nothing.
                if let Some(xj) = x.get(oj) {
                    let (start, end) = (overlay.col_ptr[oi], overlay.col_ptr[oi + 1]);
                    for idx in start..end {
                        if let OverlayOp::Upsert(w) = &overlay.ops[idx] {
                            let k = overlay.rows[idx];
                            sink(k, multiply(xj, w, k));
                        }
                    }
                }
                oi += 1;
            }
            _ => {
                // Same column in both: merge rows with a second two-pointer
                // sweep; an op masks every stored copy of its coordinate.
                let (j, rows, edges) = base.nonempty_col(bi);
                if let Some(xj) = x.get(j) {
                    let (start, end) = (overlay.col_ptr[oi], overlay.col_ptr[oi + 1]);
                    let orows = &overlay.rows[start..end];
                    let oops = &overlay.ops[start..end];
                    let mut i = 0usize;
                    let mut o = 0usize;
                    while i < rows.len() || o < orows.len() {
                        if o == orows.len() || (i < rows.len() && rows[i] < orows[o]) {
                            sink(rows[i], multiply(xj, &edges[i], rows[i]));
                            i += 1;
                        } else if i == rows.len() || orows[o] < rows[i] {
                            if let OverlayOp::Upsert(w) = &oops[o] {
                                sink(orows[o], multiply(xj, w, orows[o]));
                            }
                            o += 1;
                        } else {
                            let k = rows[i];
                            while i < rows.len() && rows[i] == k {
                                i += 1; // mask all stored copies
                            }
                            if let OverlayOp::Upsert(w) = &oops[o] {
                                sink(k, multiply(xj, w, k));
                            }
                            o += 1;
                        }
                    }
                }
                bi += 1;
                oi += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::partition::RowPartitioner;

    /// The Figure 3 graph of the paper, as `Gᵀ` (row = dst, col = src).
    fn figure3_transpose() -> Vec<(Index, Index, f32)> {
        vec![
            (1, 0, 1.0), // A->B
            (2, 0, 3.0), // A->C
            (3, 0, 2.0), // A->D
            (2, 1, 1.0), // B->C
            (3, 2, 2.0), // C->D
            (4, 3, 2.0), // D->E
            (0, 4, 4.0), // E->A
        ]
    }

    fn build(entries: &[(Index, Index, f32)], ranges: &[RowRange]) -> PartitionedDcsc<f32> {
        let coo = Coo::from_entries(5, 5, entries.to_vec());
        PartitionedDcsc::from_coo(&coo, ranges)
    }

    /// Apply ops to an entry list the way a compaction would, returning the
    /// rebuilt entry set.
    fn apply_ops(
        entries: &[(Index, Index, f32)],
        ops: &[(Index, Index, OverlayOp<f32>)],
    ) -> Vec<(Index, Index, f32)> {
        let mut out: Vec<(Index, Index, f32)> = entries
            .iter()
            .filter(|&&(r, c, _)| !ops.iter().any(|&(or, oc, _)| or == r && oc == c))
            .copied()
            .collect();
        for (r, c, op) in ops {
            if let OverlayOp::Upsert(w) = op {
                out.push((*r, *c, *w));
            }
        }
        out
    }

    fn ranges2() -> Vec<RowRange> {
        vec![RowRange { start: 0, end: 3 }, RowRange { start: 3, end: 5 }]
    }

    fn full_frontier() -> SparseVector<f32> {
        let mut x = SparseVector::new(5);
        for i in 0..5u32 {
            x.set(i, (i + 1) as f32 * 0.5);
        }
        x
    }

    fn run_overlay(
        base: &PartitionedDcsc<f32>,
        ov: &Overlay<f32>,
        x: &SparseVector<f32>,
        threads: usize,
    ) -> Vec<(Index, f32)> {
        let mut y = SparseVector::new(5);
        gspmv_overlay_into(
            base,
            ov,
            x,
            &|m: &f32, e: &f32, _| m * e,
            &|acc: &mut f32, v| *acc += v,
            &Executor::new(threads),
            &mut y,
        );
        y.to_entries()
    }

    fn run_plain(
        base: &PartitionedDcsc<f32>,
        x: &SparseVector<f32>,
        threads: usize,
    ) -> Vec<(Index, f32)> {
        let mut y = SparseVector::new(5);
        crate::spmv::gspmv_into(
            base,
            x,
            &|m: &f32, e: &f32, _| m * e,
            &|acc: &mut f32, v| *acc += v,
            &Executor::new(threads),
            &mut y,
        );
        y.to_entries()
    }

    #[test]
    fn empty_overlay_matches_plain_kernel() {
        let base = build(&figure3_transpose(), &ranges2());
        let ov: Overlay<f32> = Overlay::from_entries(5, 5, &ranges2(), vec![]);
        assert!(ov.is_empty());
        let x = full_frontier();
        for threads in [1usize, 4] {
            assert_eq!(
                run_overlay(&base, &ov, &x, threads),
                run_plain(&base, &x, threads)
            );
        }
    }

    #[test]
    fn insert_delete_update_match_rebuild() {
        let entries = figure3_transpose();
        let base = build(&entries, &ranges2());
        let ops = vec![
            (2, 1, OverlayOp::Delete),      // delete B->C
            (3, 0, OverlayOp::Upsert(9.0)), // reweight A->D
            (4, 1, OverlayOp::Upsert(7.0)), // insert B->E
            (0, 2, OverlayOp::Upsert(1.5)), // insert C->A (new column entry)
            (1, 3, OverlayOp::Delete),      // delete absent D->B: no-op
        ];
        let ov = Overlay::from_entries(5, 5, &ranges2(), ops.clone());
        assert_eq!(ov.nnz(), 5);
        assert_eq!(ov.n_upserts(), 3);
        let rebuilt = build(&apply_ops(&entries, &ops), &ranges2());
        let x = full_frontier();
        for threads in [1usize, 4] {
            assert_eq!(
                run_overlay(&base, &ov, &x, threads),
                run_plain(&rebuilt, &x, threads),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn ops_mask_all_duplicate_copies() {
        let mut entries = figure3_transpose();
        entries.push((2, 1, 10.0)); // duplicate B->C with a second weight
        entries.push((3, 0, 20.0)); // duplicate A->D
        let base = build(&entries, &ranges2());
        let ops = vec![
            (2, 1, OverlayOp::Delete),      // must remove both copies
            (3, 0, OverlayOp::Upsert(1.0)), // must replace both copies
        ];
        let ov = Overlay::from_entries(5, 5, &ranges2(), ops.clone());
        // The rebuild drops every copy of an edited coordinate.
        let rebuilt = build(&apply_ops(&entries, &ops), &ranges2());
        let x = full_frontier();
        assert_eq!(run_overlay(&base, &ov, &x, 1), run_plain(&rebuilt, &x, 1));
    }

    #[test]
    fn sparse_frontier_skips_missing_columns() {
        let entries = figure3_transpose();
        let base = build(&entries, &ranges2());
        let ops = vec![(4, 1, OverlayOp::Upsert(7.0)), (2, 0, OverlayOp::Delete)];
        let ov = Overlay::from_entries(5, 5, &ranges2(), ops.clone());
        let rebuilt = build(&apply_ops(&entries, &ops), &ranges2());
        let mut x = SparseVector::new(5);
        x.set(1, 2.0); // only source B active
        for threads in [1usize, 4] {
            assert_eq!(
                run_overlay(&base, &ov, &x, threads),
                run_plain(&rebuilt, &x, threads)
            );
        }
    }

    #[test]
    fn random_edits_match_rebuild_bit_for_bit() {
        // f64 values and a sum-reduction: any reduction-order difference vs
        // the rebuilt matrix shows up as a bit difference.
        let n: Index = 97;
        let mut state = 42u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        let mut entries: Vec<(Index, Index, f64)> = Vec::new();
        for _ in 0..900 {
            let r = rand() % n;
            let c = rand() % n;
            if !entries.iter().any(|&(er, ec, _)| er == r && ec == c) {
                entries.push((r, c, (rand() % 1000) as f64 / 7.0));
            }
        }
        let counts = {
            let coo = Coo::from_entries(n, n, entries.clone());
            coo.row_counts()
        };
        let ranges = RowPartitioner::balanced_nnz(&counts, 7);
        let coo = Coo::from_entries(n, n, entries.clone());
        let base = PartitionedDcsc::from_coo(&coo, &ranges);

        // ~120 ops: half deletes of existing coordinates, half upserts
        // (mix of reweights and fresh inserts).
        let mut ops: Vec<(Index, Index, OverlayOp<f64>)> = Vec::new();
        for i in 0..120 {
            let (r, c) = if i % 2 == 0 && !entries.is_empty() {
                let e = entries[(rand() as usize) % entries.len()];
                (e.0, e.1)
            } else {
                (rand() % n, rand() % n)
            };
            if ops.iter().any(|&(or, oc, _)| or == r && oc == c) {
                continue;
            }
            let op = if i % 4 == 1 {
                OverlayOp::Delete
            } else {
                OverlayOp::Upsert((rand() % 500) as f64 / 3.0)
            };
            ops.push((r, c, op));
        }
        let ov = Overlay::from_entries(n, n, &ranges, ops.clone());

        let mut rebuilt_entries: Vec<(Index, Index, f64)> = entries
            .iter()
            .filter(|&&(r, c, _)| !ops.iter().any(|&(or, oc, _)| or == r && oc == c))
            .copied()
            .collect();
        for (r, c, op) in &ops {
            if let OverlayOp::Upsert(w) = op {
                rebuilt_entries.push((*r, *c, *w));
            }
        }
        let rebuilt_coo = Coo::from_entries(n, n, rebuilt_entries);
        let rebuilt = PartitionedDcsc::from_coo(&rebuilt_coo, &ranges);

        let mut x: SparseVector<f64> = SparseVector::new(n as usize);
        for i in 0..n {
            if i % 3 != 1 {
                x.set(i, (i as f64 + 0.25) / 3.0);
            }
        }
        let multiply = |m: &f64, e: &f64, k: Index| m * e + k as f64 * 1e-9;
        let add = |acc: &mut f64, v: f64| *acc += v;
        for threads in [1usize, 4] {
            let ex = Executor::new(threads);
            let mut want: SparseVector<f64> = SparseVector::new(n as usize);
            crate::spmv::gspmv_into(&rebuilt, &x, &multiply, &add, &ex, &mut want);
            let mut got: SparseVector<f64> = SparseVector::new(n as usize);
            gspmv_overlay_into(&base, &ov, &x, &multiply, &add, &ex, &mut got);
            let want_bits: Vec<(Index, u64)> = want
                .to_entries()
                .into_iter()
                .map(|(k, v)| (k, v.to_bits()))
                .collect();
            let got_bits: Vec<(Index, u64)> = got
                .to_entries()
                .into_iter()
                .map(|(k, v)| (k, v.to_bits()))
                .collect();
            assert_eq!(got_bits, want_bits, "{threads} threads");
        }
    }

    #[test]
    fn misaligned_partitions_are_rejected() {
        let base = build(&figure3_transpose(), &ranges2());
        let other = vec![RowRange { start: 0, end: 2 }, RowRange { start: 2, end: 5 }];
        let ov: Overlay<f32> = Overlay::from_entries(5, 5, &other, vec![]);
        let mut y = SparseVector::new(5);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gspmv_overlay_into(
                &base,
                &ov,
                &full_frontier(),
                &|m: &f32, e: &f32, _| m * e,
                &|acc: &mut f32, v| *acc += v,
                &Executor::sequential(),
                &mut y,
            )
        }));
        assert!(err.is_err());
    }

    #[test]
    fn overlay_reports_sizes() {
        let ov = Overlay::from_entries(
            5,
            5,
            &ranges2(),
            vec![(0, 1, OverlayOp::Upsert(1.0f32)), (4, 2, OverlayOp::Delete)],
        );
        assert_eq!(ov.nnz(), 2);
        assert_eq!(ov.n_upserts(), 1);
        assert_eq!(ov.n_partitions(), 2);
        assert!(!ov.is_empty());
        assert!(ov.bytes() > 0);
        assert_eq!(ov.nrows(), 5);
        assert_eq!(ov.ncols(), 5);
        assert_eq!(ov.ranges().len(), 2);
    }
}
