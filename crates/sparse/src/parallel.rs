//! Partition-parallel execution with dynamic scheduling.
//!
//! The paper parallelizes the generalized SpMV by giving each thread matrix
//! partitions to process, using OpenMP dynamic scheduling so that threads that
//! finish light partitions steal the remaining heavy ones (§4.5, optimizations
//! 3 and 4). [`Executor::run_dynamic`] reproduces that: a shared atomic
//! counter hands out task (partition) indices to a fixed set of scoped
//! threads until the queue is exhausted.
//!
//! The executor is intentionally tiny: GraphMat's parallelism need is exactly
//! "N independent tasks, dynamically scheduled, results collected", and
//! building it directly on [`std::thread::scope`] keeps the dependency
//! surface empty and the scheduling behaviour transparent for the Figure 7
//! ablation.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width parallel executor (one OS thread per lane).
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    nthreads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(available_threads())
    }
}

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Executor {
    /// Create an executor that uses `nthreads` worker threads (values below 1
    /// are clamped to 1).
    pub fn new(nthreads: usize) -> Self {
        Executor {
            nthreads: nthreads.max(1),
        }
    }

    /// Create a sequential executor.
    pub fn sequential() -> Self {
        Executor { nthreads: 1 }
    }

    /// Number of worker threads.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Run `f(task)` for every task index in `0..ntasks`, dynamically
    /// scheduled across the executor's threads, and return the results in
    /// task order.
    ///
    /// With one thread (or one task) everything runs inline on the caller's
    /// thread — important both for determinism in tests and so that the
    /// single-threaded baseline of the scalability experiment (Figure 5) pays
    /// no threading overhead.
    pub fn run_dynamic<T, F>(&self, ntasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if ntasks == 0 {
            return Vec::new();
        }
        let workers = self.nthreads.min(ntasks);
        if workers == 1 {
            return (0..ntasks).map(&f).collect();
        }

        let next = AtomicUsize::new(0);
        let mut collected: Vec<(usize, T)> = Vec::with_capacity(ntasks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let task = next.fetch_add(1, Ordering::Relaxed);
                            if task >= ntasks {
                                break;
                            }
                            local.push((task, f(task)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                collected.extend(h.join().expect("worker thread panicked"));
            }
        });

        collected.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(collected.len(), ntasks);
        collected.into_iter().map(|(_, v)| v).collect()
    }

    /// Run `f(task)` for side effects only (no results collected).
    pub fn for_each_dynamic<F>(&self, ntasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let _ = self.run_dynamic(ntasks, |t| {
            f(t);
        });
    }

    /// Split the half-open range `0..n` into one contiguous chunk per thread
    /// and run `f(thread_id, start, end)` on each. Used for embarrassingly
    /// parallel loops over vertices (e.g. the APPLY phase).
    pub fn run_chunked<F>(&self, n: usize, f: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let workers = self.nthreads.min(n);
        if workers == 1 {
            f(0, 0, n);
            return;
        }
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for t in 0..workers {
                let f = &f;
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(n);
                if start >= end {
                    continue;
                }
                scope.spawn(move || f(t, start, end));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_runs_in_order() {
        let ex = Executor::sequential();
        let out = ex.run_dynamic(5, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn parallel_results_in_task_order() {
        let ex = Executor::new(4);
        let out = ex.run_dynamic(100, |i| i as u64 * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let ex = Executor::new(4);
        let out: Vec<u32> = ex.run_dynamic(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_tasks() {
        let ex = Executor::new(16);
        let out = ex.run_dynamic(3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn for_each_visits_every_task_once() {
        let ex = Executor::new(4);
        let counter = AtomicU64::new(0);
        ex.for_each_dynamic(1000, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn run_chunked_covers_range_exactly_once() {
        let ex = Executor::new(3);
        let n = 1000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        ex.run_chunked(n, |_, start, end| {
            for hit in &hits[start..end] {
                hit.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_chunked_empty() {
        let ex = Executor::new(3);
        ex.run_chunked(0, |_, _, _| panic!("should not be called"));
    }

    #[test]
    fn executor_clamps_to_one_thread() {
        let ex = Executor::new(0);
        assert_eq!(ex.nthreads(), 1);
    }

    #[test]
    fn default_uses_available_parallelism() {
        let ex = Executor::default();
        assert!(ex.nthreads() >= 1);
        assert_eq!(ex.nthreads(), available_threads());
    }
}
