//! Partition-parallel execution on a persistent worker pool.
//!
//! The paper parallelizes the generalized SpMV by giving each thread matrix
//! partitions to process, using OpenMP dynamic scheduling so that threads that
//! finish light partitions steal the remaining heavy ones (§4.5, optimizations
//! 3 and 4). [`Executor::run_dynamic`] reproduces that: a shared atomic
//! counter hands out task (partition) indices to a fixed set of worker lanes
//! until the queue is exhausted.
//!
//! Unlike an OpenMP parallel region — and unlike the first version of this
//! module, which spawned and joined fresh OS threads on every call — the
//! [`Executor`] owns a **persistent pool** of parked worker threads:
//!
//! * the pool is created once (in [`Executor::new`]) and reused by every
//!   `run_dynamic` / `run_chunked` / `for_each_dynamic` call, so a superstep
//!   costs a condvar wake instead of a `thread::spawn` + `join` round trip.
//!   This matters most exactly where the paper says it does (§5.2.1):
//!   algorithms like road-network SSSP run thousands of supersteps that each
//!   do microseconds of work;
//! * workers park on a condvar between calls and are shut down when the
//!   executor is dropped;
//! * the calling thread participates as lane 0, so `Executor::new(n)` still
//!   means *n* lanes of compute but only `n - 1` OS threads are spawned
//!   ([`Executor::threads_spawned`] exposes the count for tests);
//! * [`Executor::sequential`] (and any 1-thread executor) spawns no pool at
//!   all and runs everything inline on the caller — important both for
//!   determinism in tests and so the single-threaded baseline of the
//!   scalability experiment (Figure 5) pays no threading overhead.
//!
//! A dispatch (`broadcast`) hands the workers a lifetime-erased pointer to
//! the caller's closure; the caller always blocks until every lane has
//! finished before returning, which is what makes the erasure sound. Panics
//! in any lane are caught, the remaining lanes drain normally, and the first
//! payload is re-raised on the caller — the pool itself survives and stays
//! usable.
//!
//! Calls on one `Executor` are serialized: the pool runs one parallel region
//! at a time. Do **not** call back into the same executor from inside a task
//! closure — that would deadlock. Nested parallelism is not something
//! GraphMat's flat partition-parallel loops need.
//!
//! [`chunks`] is the shared range-splitting helper used by [`Executor::run_chunked`]
//! and by the chunk-parallel phases in `graphmat-core` (APPLY, SEND). It
//! yields only non-empty ranges — the previous per-call-site chunk math could
//! emit empty trailing chunks that were still scheduled as tasks.

use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Lock a pool mutex, shrugging off poisoning. Task panics are captured by
/// `catch_unwind` inside the lanes and re-raised on the caller, so a
/// poisoned pool mutex only means a lane died between those nets; the
/// counters it guards are still consistent (every update is a single
/// assignment) and the dispatch protocol must keep draining or the caller
/// deadlocks.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// [`Condvar::wait`] with the same poisoning stance as [`lock`].
fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Process-wide count of worker threads ever spawned by [`Executor`] pools.
///
/// Tests use this to prove the engine never spawns threads inside the
/// superstep loop: the counter may only move when an executor is *created*.
pub fn threads_spawned_total() -> usize {
    SPAWN_COUNT.load(Ordering::Relaxed)
}

static SPAWN_COUNT: AtomicUsize = AtomicUsize::new(0);

/// A split of `0..len` into at most `max_chunks` contiguous, **non-empty**
/// ranges of (nearly) equal size.
///
/// `bounds(i)` for `i < count()` is guaranteed non-empty, so every scheduled
/// task has real work — callers never see the degenerate trailing chunks the
/// old `chunk_count`/`chunk_bounds` pair in the runner could produce.
#[derive(Clone, Copy, Debug)]
pub struct Chunks {
    len: usize,
    chunk: usize,
    count: usize,
}

/// Split `0..len` into at most `max_chunks` non-empty contiguous ranges.
pub fn chunks(len: usize, max_chunks: usize) -> Chunks {
    if len == 0 {
        return Chunks {
            len: 0,
            chunk: 1,
            count: 0,
        };
    }
    let max = max_chunks.max(1).min(len);
    let chunk = len.div_ceil(max);
    Chunks {
        len,
        chunk,
        count: len.div_ceil(chunk),
    }
}

impl Chunks {
    /// Number of non-empty chunks.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Half-open bounds `(start, end)` of chunk `i`; non-empty for `i < count()`.
    pub fn bounds(&self, i: usize) -> (usize, usize) {
        debug_assert!(
            i < self.count,
            "chunk index {i} out of range {}",
            self.count
        );
        let start = i * self.chunk;
        (start, (start + self.chunk).min(self.len))
    }

    /// Iterate over all `(start, end)` bounds.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.count).map(|i| self.bounds(i))
    }
}

/// A lifetime-erased pointer to the closure of the parallel region currently
/// being executed. Only ever dereferenced while the dispatching caller is
/// blocked in [`Executor::broadcast`], which keeps the borrow alive.
struct JobSlot(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared invocation is fine) and the pointer
// only crosses threads under the dispatch protocol described above.
unsafe impl Send for JobSlot {}

struct Control {
    /// Bumped once per dispatch; workers run each epoch's job exactly once.
    epoch: u64,
    job: Option<JobSlot>,
    /// Workers that have not yet finished the current epoch's job.
    remaining: usize,
    /// First panic payload captured from a worker lane this epoch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    control: Mutex<Control>,
    /// Signalled when a new epoch (or shutdown) is published.
    work: Condvar,
    /// Signalled when the last worker finishes an epoch.
    done: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    /// Serializes dispatches: one parallel region at a time per executor.
    caller: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    fn new(nworkers: usize) -> Self {
        let shared = Arc::new(Shared {
            control: Mutex::new(Control {
                epoch: 0,
                job: None,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..nworkers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                SPAWN_COUNT.fetch_add(1, Ordering::Relaxed);
                std::thread::Builder::new()
                    .name(format!("graphmat-worker-{}", i + 1))
                    .spawn(move || worker_loop(&shared, i + 1))
                    // audit:allow(no-unwrap): pool construction is setup-time;
                    // a machine that cannot spawn a thread has nothing to
                    // degrade to, and the panic carries the OS error.
                    .expect("failed to spawn executor worker thread")
            })
            .collect();
        Pool {
            shared,
            caller: Mutex::new(()),
            handles,
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut c = lock(&self.shared.control);
            c.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut c = lock(&shared.control);
            loop {
                if c.shutdown {
                    return;
                }
                if c.epoch != seen_epoch {
                    seen_epoch = c.epoch;
                    // audit:allow(no-unwrap): dispatch protocol invariant — a
                    // bumped epoch always publishes a job first; a None here
                    // is a pool bug and continuing would deadlock the caller.
                    break c.job.as_ref().expect("job published with epoch").0;
                }
                c = wait(&shared.work, c);
            }
        };
        // SAFETY: the dispatching caller blocks until `remaining` reaches
        // zero, so the closure behind `job` outlives this call.
        let f = unsafe { &*job };
        // RECOVERY: the task closure may panic with its output buffers
        // half-written, but those buffers belong to the dispatching caller,
        // which sees the re-raised payload and unwinds too — nothing
        // half-written is ever observed. Catching here keeps the lane (and
        // the `remaining` handshake the caller is blocked on) alive: the
        // first payload is stashed, the count still reaches zero, and the
        // pool stays usable for the next dispatch.
        let result = catch_unwind(AssertUnwindSafe(|| f(lane)));
        let mut c = lock(&shared.control);
        if let Err(payload) = result {
            if c.panic.is_none() {
                c.panic = Some(payload);
            }
        }
        c.remaining -= 1;
        if c.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// A fixed-width parallel executor backed by a persistent worker pool.
///
/// `Executor::new(n)` provides `n` lanes of compute: `n - 1` parked pool
/// threads plus the calling thread. All scheduling entry points reuse the
/// same pool; nothing is spawned per call. The pool shuts down when the
/// executor is dropped.
pub struct Executor {
    nthreads: usize,
    pool: Option<Pool>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(available_threads())
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("nthreads", &self.nthreads)
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

/// Shared pointer to the `run_dynamic` result slots; each task index is
/// written by exactly one lane.
struct ResultSlots<T>(*mut MaybeUninit<T>);
// SAFETY: lanes only ever *write* through the pointer, each to the slot
// whose index it uniquely claimed from the dispatch counter, so no slot is
// aliased concurrently; the values moved across threads are `T: Send`; and
// the dispatching caller keeps the backing `Vec` alive (and does not read
// it) until every lane has finished the broadcast.
unsafe impl<T: Send> Send for ResultSlots<T> {}
unsafe impl<T: Send> Sync for ResultSlots<T> {}

impl Executor {
    /// Create an executor with `nthreads` lanes. For `nthreads > 1` this
    /// spawns the worker pool — create the executor once and reuse it; see
    /// `graphmat_core::session::Session`.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads == 0`. A zero thread count is a configuration
    /// bug; callers that support "0 = auto" must resolve it first (there is
    /// exactly one such resolution point,
    /// `graphmat_core::RunOptions::effective_threads` — this used to be
    /// clamped here *and* mapped there, and the two disagreed about what
    /// zero meant).
    pub fn new(nthreads: usize) -> Self {
        assert!(
            nthreads >= 1,
            "Executor::new requires at least one lane (got 0); resolve \
             '0 = all threads' before constructing the executor"
        );
        let pool = (nthreads > 1).then(|| Pool::new(nthreads - 1));
        Executor { nthreads, pool }
    }

    /// Create a sequential executor (no pool; everything runs inline).
    pub fn sequential() -> Self {
        Executor {
            nthreads: 1,
            pool: None,
        }
    }

    /// Number of compute lanes.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Number of OS threads this executor spawned (always `nthreads - 1` for
    /// a pooled executor, 0 for a sequential one, and constant for the
    /// executor's whole lifetime — the superstep loop never spawns).
    pub fn threads_spawned(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.handles.len())
    }

    /// Run `f(lane)` once on every lane (workers 1..n plus the caller as
    /// lane 0) and return once all lanes have finished. Panics from any lane
    /// are re-raised here after every lane has stopped touching `f`.
    fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        let pool = self
            .pool
            .as_ref()
            // audit:allow(no-unwrap): internal invariant — every caller
            // checks `self.pool.is_none()` and runs inline before reaching
            // the broadcast path.
            .expect("broadcast requires a pooled executor");
        let _serial = lock(&pool.caller);
        // SAFETY of the lifetime erasure: this function does not return until
        // every worker has finished running `job` (remaining == 0), so the
        // borrow of `f` is live for as long as any worker can observe it.
        let job = JobSlot(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut c = lock(&pool.shared.control);
            c.epoch += 1;
            c.job = Some(job);
            c.remaining = pool.handles.len();
            pool.shared.work.notify_all();
        }
        // RECOVERY: lane 0 runs on the calling thread, and a panic here must
        // not skip the wait below — returning early while workers still hold
        // the lifetime-erased `job` pointer would be a use-after-free. The
        // catch holds the caller in place until `remaining` hits zero and the
        // job slot is cleared; only then is the payload re-raised.
        let caller_result = catch_unwind(AssertUnwindSafe(|| f(0)));
        let worker_panic = {
            let mut c = lock(&pool.shared.control);
            while c.remaining > 0 {
                c = wait(&pool.shared.done, c);
            }
            c.job = None;
            c.panic.take()
        };
        drop(_serial);
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Run `f(task)` for every task index in `0..ntasks`, dynamically
    /// scheduled across the executor's lanes, and return the results in task
    /// order.
    ///
    /// With one lane (or one task) everything runs inline on the caller's
    /// thread. The only allocation is the result vector itself; prefer
    /// [`Executor::for_each_dynamic`] on hot paths that do not need collected
    /// results.
    pub fn run_dynamic<T, F>(&self, ntasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if ntasks == 0 {
            return Vec::new();
        }
        if self.pool.is_none() || ntasks == 1 {
            return (0..ntasks).map(&f).collect();
        }

        let next = AtomicUsize::new(0);
        let mut results: Vec<MaybeUninit<T>> = (0..ntasks).map(|_| MaybeUninit::uninit()).collect();
        let slots = ResultSlots(results.as_mut_ptr());
        let slots = &slots; // capture the Sync wrapper, not the raw pointer
        #[cfg(feature = "shard-check")]
        let slot_claims = crate::shard_check::ClaimMap::new(ntasks, "run_dynamic result slot");
        #[cfg(feature = "shard-check")]
        let slot_claims = &slot_claims;
        self.broadcast(&|_lane| loop {
            let task = next.fetch_add(1, Ordering::Relaxed);
            if task >= ntasks {
                break;
            }
            let value = f(task);
            // Each slot is write-once: claim before the raw write so a
            // dispatch-counter bug panics instead of aliasing the slot.
            #[cfg(feature = "shard-check")]
            slot_claims.claim_exclusive(task);
            // SAFETY: `task` was claimed from the counter by exactly one
            // lane, so this slot is written exactly once, and `slots`
            // outlives the broadcast (the caller blocks until completion).
            unsafe { (*slots.0.add(task)).write(value) };
        });
        // If any lane panicked, `broadcast` has already re-raised and we never
        // get here (the MaybeUninit vec then drops without dropping elements —
        // a leak of the completed results, never a double free or UB).

        // SAFETY: the counter handed out every index in 0..ntasks and
        // broadcast returned normally, so every slot is initialized.
        unsafe {
            let ptr = results.as_mut_ptr() as *mut T;
            let len = results.len();
            let cap = results.capacity();
            std::mem::forget(results);
            Vec::from_raw_parts(ptr, len, cap)
        }
    }

    /// Run `f(task)` for side effects only. Unlike [`Executor::run_dynamic`]
    /// this allocates nothing — it is the scheduling primitive of the
    /// allocation-free superstep hot path.
    pub fn for_each_dynamic<F>(&self, ntasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if ntasks == 0 {
            return;
        }
        if self.pool.is_none() || ntasks == 1 {
            for task in 0..ntasks {
                f(task);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        self.broadcast(&|_lane| loop {
            let task = next.fetch_add(1, Ordering::Relaxed);
            if task >= ntasks {
                break;
            }
            f(task);
        });
    }

    /// Split the half-open range `0..n` into one contiguous chunk per lane
    /// (via [`chunks`]) and run `f(chunk_idx, start, end)` on each. Used for
    /// embarrassingly parallel loops over vertices or bit-vector words
    /// (e.g. the SEND and APPLY phases). Allocation-free.
    pub fn run_chunked<F>(&self, n: usize, f: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let ch = chunks(n, self.nthreads);
        if self.pool.is_none() || ch.count() == 1 {
            for (i, (start, end)) in ch.iter().enumerate() {
                f(i, start, end);
            }
            return;
        }
        self.broadcast(&|lane| {
            if lane < ch.count() {
                let (start, end) = ch.bounds(lane);
                f(lane, start, end);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_runs_in_order() {
        let ex = Executor::sequential();
        let out = ex.run_dynamic(5, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn parallel_results_in_task_order() {
        let ex = Executor::new(4);
        let out = ex.run_dynamic(100, |i| i as u64 * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let ex = Executor::new(4);
        let out: Vec<u32> = ex.run_dynamic(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_tasks() {
        let ex = Executor::new(16);
        let out = ex.run_dynamic(3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn for_each_visits_every_task_once() {
        let ex = Executor::new(4);
        let counter = AtomicU64::new(0);
        ex.for_each_dynamic(1000, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn run_chunked_covers_range_exactly_once() {
        let ex = Executor::new(3);
        let n = 1000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        ex.run_chunked(n, |_, start, end| {
            for hit in &hits[start..end] {
                hit.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_chunked_empty() {
        let ex = Executor::new(3);
        ex.run_chunked(0, |_, _, _| panic!("should not be called"));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_is_a_configuration_bug() {
        let _ = Executor::new(0);
    }

    #[test]
    fn default_uses_available_parallelism() {
        let ex = Executor::default();
        assert!(ex.nthreads() >= 1);
        assert_eq!(ex.nthreads(), available_threads());
    }

    #[test]
    fn pool_spawns_once_and_is_reused() {
        // Only the per-executor counter is asserted here: the process-global
        // `threads_spawned_total` moves whenever a concurrently running test
        // creates a pooled executor, so exact global assertions live in the
        // isolated integration binary `tests/pool_reuse.rs`.
        let ex = Executor::new(4);
        assert_eq!(ex.threads_spawned(), 3);
        // Many dispatches across all entry points: no further spawns.
        for round in 0..200 {
            let out = ex.run_dynamic(8, |i| i + round);
            assert_eq!(out.len(), 8);
            ex.for_each_dynamic(8, |_| {});
            ex.run_chunked(100, |_, _, _| {});
        }
        assert_eq!(ex.threads_spawned(), 3);
    }

    #[test]
    fn pool_survives_task_panic() {
        let ex = Executor::new(3);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ex.for_each_dynamic(16, |t| {
                if t == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool is still alive and schedules correctly afterwards.
        let out = ex.run_dynamic(10, |i| i * 3);
        assert_eq!(out, (0..10).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn drop_shuts_the_pool_down() {
        let ex = Executor::new(3);
        ex.for_each_dynamic(4, |_| {});
        drop(ex); // joins the workers; nothing to assert beyond "no hang"
    }

    #[test]
    fn chunks_yield_only_nonempty_ranges() {
        // The regression the old runner chunk math had: len=9 split into up
        // to 8 chunks used to emit (8,9) followed by three empty chunks.
        let ch = chunks(9, 8);
        assert_eq!(ch.count(), 5);
        let collected: Vec<(usize, usize)> = ch.iter().collect();
        assert_eq!(collected, vec![(0, 2), (2, 4), (4, 6), (6, 8), (8, 9)]);
        assert!(collected.iter().all(|&(s, e)| e > s));
    }

    #[test]
    fn chunks_cover_range_contiguously() {
        for (len, max) in [(0, 4), (1, 4), (5, 1), (10, 3), (64, 64), (1000, 7)] {
            let ch = chunks(len, max);
            assert!(ch.count() <= max.max(1));
            let mut next = 0;
            for (s, e) in ch.iter() {
                assert_eq!(s, next, "len={len} max={max}");
                assert!(e > s, "empty chunk for len={len} max={max}");
                next = e;
            }
            assert_eq!(next, len);
        }
    }
}
