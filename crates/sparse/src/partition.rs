//! 1-D row partitioning of DCSC matrices.
//!
//! GraphMat partitions the (transposed) adjacency matrix along rows into
//! *many more partitions than threads* and schedules them dynamically; this
//! is the "load balancing" optimization of §4.5 (and the `nthreads*8`
//! argument in the paper's appendix listing). Each partition is stored as an
//! independent DCSC structure (paper §4.4.1), which is exactly what
//! [`PartitionedDcsc`] holds.
//!
//! Two partitioning policies are provided:
//!
//! * [`RowPartitioner::even_rows`] — equal-sized row ranges (what a naive
//!   implementation would do);
//! * [`RowPartitioner::balanced_nnz`] — row ranges balanced by non-zero
//!   count, which matters on the skewed degree distributions of RMAT /
//!   social graphs.

use crate::coo::Coo;
use crate::dcsc::Dcsc;
use crate::{ix, Index};

/// A contiguous range of rows assigned to one partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowRange {
    /// First row (inclusive).
    pub start: Index,
    /// One past the last row (exclusive).
    pub end: Index,
}

impl RowRange {
    /// Number of rows in the range.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// `true` if the range contains no rows.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// `true` if `row` falls inside the range.
    #[inline(always)]
    pub fn contains(&self, row: Index) -> bool {
        row >= self.start && row < self.end
    }
}

/// Policies for splitting `nrows` rows into partitions.
pub struct RowPartitioner;

impl RowPartitioner {
    /// Split into `nparts` ranges of (nearly) equal row count.
    pub fn even_rows(nrows: Index, nparts: usize) -> Vec<RowRange> {
        let nparts = nparts.max(1);
        let nrows_us = ix(nrows);
        let base = nrows_us / nparts;
        let extra = nrows_us % nparts;
        let mut ranges = Vec::with_capacity(nparts);
        let mut start = 0usize;
        for p in 0..nparts {
            let len = base + usize::from(p < extra);
            ranges.push(RowRange {
                start: start as Index,
                end: (start + len) as Index,
            });
            start += len;
        }
        debug_assert_eq!(start, nrows_us);
        ranges
    }

    /// Split into at most `nparts` ranges whose total non-zero counts are
    /// approximately balanced, given per-row non-zero counts.
    ///
    /// Rows are never split, so a single very heavy row forms its own
    /// partition. Returned ranges always cover `0..row_nnz.len()` and are
    /// contiguous and non-overlapping.
    pub fn balanced_nnz(row_nnz: &[usize], nparts: usize) -> Vec<RowRange> {
        let nparts = nparts.max(1);
        let nrows = row_nnz.len();
        let total: usize = row_nnz.iter().sum();
        if nrows == 0 {
            return vec![RowRange { start: 0, end: 0 }];
        }
        let target = (total / nparts).max(1);
        let mut ranges = Vec::with_capacity(nparts);
        let mut start = 0usize;
        let mut acc = 0usize;
        for (r, &cnt) in row_nnz.iter().enumerate() {
            acc += cnt;
            let remaining_parts = nparts - ranges.len();
            let remaining_rows = nrows - r - 1;
            // close the partition when we reach the target, but keep enough
            // rows for the remaining partitions to be non-degenerate
            if acc >= target && remaining_parts > 1 && remaining_rows + 1 >= remaining_parts {
                ranges.push(RowRange {
                    start: start as Index,
                    end: (r + 1) as Index,
                });
                start = r + 1;
                acc = 0;
            }
        }
        ranges.push(RowRange {
            start: start as Index,
            end: nrows as Index,
        });
        ranges
    }
}

/// One row partition of a matrix: a row range plus the DCSC holding exactly
/// the entries whose row falls in that range. Row indices inside the DCSC are
/// *global* (not rebased), so SpMV output indices need no translation.
#[derive(Clone, Debug)]
pub struct Partition<T> {
    /// The rows this partition owns.
    pub rows: RowRange,
    /// The entries of those rows, as a DCSC over the full matrix shape.
    pub matrix: Dcsc<T>,
}

impl<T> Partition<T> {
    /// Number of non-zeros in this partition.
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }
}

/// A sparse matrix split into 1-D row partitions, each an independent DCSC.
#[derive(Clone, Debug)]
pub struct PartitionedDcsc<T> {
    nrows: Index,
    ncols: Index,
    partitions: Vec<Partition<T>>,
}

impl<T: Clone> PartitionedDcsc<T> {
    /// Partition a COO matrix into the given row ranges.
    ///
    /// # Panics
    /// Panics if the ranges do not cover `0..nrows` contiguously.
    pub fn from_coo(coo: &Coo<T>, ranges: &[RowRange]) -> Self {
        assert!(!ranges.is_empty(), "at least one partition required");
        assert_eq!(ranges[0].start, 0, "partitions must start at row 0");
        assert_eq!(
            // audit:allow(no-unwrap): non-empty — asserted two lines up.
            ranges.last().unwrap().end,
            coo.nrows(),
            "partitions must cover all rows"
        );
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "partitions must be contiguous");
        }

        // Bucket entries by partition. A linear scan with binary search over
        // range starts keeps this O(nnz log nparts).
        let starts: Vec<Index> = ranges.iter().map(|r| r.start).collect();
        let mut buckets: Vec<Vec<(Index, Index, T)>> = vec![Vec::new(); ranges.len()];
        for (r, c, v) in coo.entries() {
            let p = match starts.binary_search(r) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            buckets[p].push((*r, *c, v.clone()));
        }

        let partitions = ranges
            .iter()
            .zip(buckets)
            .map(|(range, mut entries)| {
                entries.sort_unstable_by_key(|&(r, c, _)| (c, r));
                Partition {
                    rows: *range,
                    matrix: Dcsc::from_col_sorted(coo.nrows(), coo.ncols(), &entries),
                }
            })
            .collect();

        PartitionedDcsc {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            partitions,
        }
    }

    /// Partition with `nparts` nnz-balanced row ranges.
    pub fn from_coo_balanced(coo: &Coo<T>, nparts: usize) -> Self {
        let ranges = RowPartitioner::balanced_nnz(&coo.row_counts(), nparts);
        Self::from_coo(coo, &ranges)
    }

    /// Partition with `nparts` equal-row-count ranges.
    pub fn from_coo_even(coo: &Coo<T>, nparts: usize) -> Self {
        let ranges = RowPartitioner::even_rows(coo.nrows(), nparts);
        Self::from_coo(coo, &ranges)
    }
}

impl<T> PartitionedDcsc<T> {
    /// Number of rows of the whole matrix.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns of the whole matrix.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Total number of non-zeros across partitions.
    pub fn nnz(&self) -> usize {
        self.partitions.iter().map(|p| p.nnz()).sum()
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Access the partitions.
    pub fn partitions(&self) -> &[Partition<T>] {
        &self.partitions
    }

    /// Access one partition.
    pub fn partition(&self, i: usize) -> &Partition<T> {
        &self.partitions[i]
    }

    /// Iterate over all entries as `(row, col, &value)` (partition order).
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, &T)> + '_ {
        self.partitions.iter().flat_map(|p| p.matrix.iter())
    }

    /// Memory footprint of the index structures across all partitions.
    pub fn index_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.matrix.index_bytes()).sum()
    }

    /// Total memory footprint (indices + edge values) across all partitions.
    /// Zero value bytes when `T = ()`.
    pub fn bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.matrix.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<i32> {
        let mut m = Coo::new(8, 8);
        // a heavy row 0, lighter others
        for c in 1..8 {
            m.push(0, c, c as i32);
        }
        m.push(3, 1, 100);
        m.push(5, 2, 200);
        m.push(7, 0, 300);
        m
    }

    #[test]
    fn even_rows_covers_everything() {
        let ranges = RowPartitioner::even_rows(10, 3);
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges[0], RowRange { start: 0, end: 4 });
        assert_eq!(ranges[1], RowRange { start: 4, end: 7 });
        assert_eq!(ranges[2], RowRange { start: 7, end: 10 });
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 10);
    }

    #[test]
    fn even_rows_more_parts_than_rows() {
        let ranges = RowPartitioner::even_rows(2, 5);
        assert_eq!(ranges.len(), 5);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 2);
        assert_eq!(ranges.last().unwrap().end, 2);
    }

    #[test]
    fn balanced_nnz_splits_by_weight() {
        // 100 nnz in row 0, 1 nnz in each of rows 1..=4
        let row_nnz = vec![100, 1, 1, 1, 1];
        let ranges = RowPartitioner::balanced_nnz(&row_nnz, 2);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], RowRange { start: 0, end: 1 });
        assert_eq!(ranges[1], RowRange { start: 1, end: 5 });
    }

    #[test]
    fn balanced_nnz_handles_uniform() {
        let row_nnz = vec![2; 12];
        let ranges = RowPartitioner::balanced_nnz(&row_nnz, 4);
        assert_eq!(ranges.last().unwrap().end, 12);
        assert!(ranges.len() <= 4);
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 12);
    }

    #[test]
    fn balanced_nnz_empty_matrix() {
        let ranges = RowPartitioner::balanced_nnz(&[], 4);
        assert_eq!(ranges.len(), 1);
        assert!(ranges[0].is_empty());
    }

    #[test]
    fn partitioned_dcsc_preserves_entries() {
        let coo = sample();
        let pd = PartitionedDcsc::from_coo_even(&coo, 3);
        assert_eq!(pd.nnz(), coo.nnz());
        assert_eq!(pd.n_partitions(), 3);
        let mut got: Vec<(u32, u32, i32)> = pd.iter().map(|(r, c, v)| (r, c, *v)).collect();
        let mut expect: Vec<(u32, u32, i32)> =
            coo.entries().iter().map(|&(r, c, v)| (r, c, v)).collect();
        got.sort();
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn partition_rows_are_disjoint_and_owned() {
        let coo = sample();
        let pd = PartitionedDcsc::from_coo_balanced(&coo, 4);
        for p in pd.partitions() {
            for (r, _, _) in p.matrix.iter() {
                assert!(p.rows.contains(r), "row {r} outside {:?}", p.rows);
            }
        }
        // ranges contiguous
        for w in pd.partitions().windows(2) {
            assert_eq!(w[0].rows.end, w[1].rows.start);
        }
    }

    #[test]
    fn balanced_beats_even_on_skew() {
        let coo = sample();
        let even = PartitionedDcsc::from_coo_even(&coo, 4);
        let balanced = PartitionedDcsc::from_coo_balanced(&coo, 4);
        let max_even = even.partitions().iter().map(|p| p.nnz()).max().unwrap();
        let max_bal = balanced.partitions().iter().map(|p| p.nnz()).max().unwrap();
        assert!(max_bal <= max_even);
    }

    #[test]
    #[should_panic]
    fn non_covering_ranges_panic() {
        let coo = sample();
        let ranges = vec![RowRange { start: 0, end: 4 }];
        let _ = PartitionedDcsc::from_coo(&coo, &ranges);
    }
}
