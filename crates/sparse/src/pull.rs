//! Row-major CSR mirrors for the **pull** execution path.
//!
//! GraphMat's column-wise DCSC SpMV is a *push* traversal: it walks the
//! non-empty columns (sources) present in the sparse message vector and
//! scatters into the output rows. That is ideal for sparse frontiers but
//! wasteful when most vertices are active — the regime direction-optimized
//! engines (Beamer et al.'s bottom-up BFS, GraphBLAST's SpMV/SpMSpV switch)
//! handle with a row-wise *pull* traversal: iterate destination rows, gather
//! from a dense message vector by index, and write each output entry exactly
//! once.
//!
//! [`CsrMirror`] is the structure that traversal runs over: the **same row
//! partitions** as a [`PartitionedDcsc`] (so the two backends share one load
//! balance and one disjoint-row-ownership argument), each stored row-major —
//! a compact CSR whose row pointers cover only the partition's own row range
//! and whose column ids stay global. It is a *mirror*: built from, and fully
//! redundant with, the DCSC it shadows, costing roughly the same memory
//! again ([`CsrMirror::bytes`]; graph builds can skip it when pull will
//! never run).

use crate::dcsc::Dcsc;
use crate::partition::{PartitionedDcsc, RowRange};
use crate::{ix, Index};

/// One row partition of a [`CsrMirror`]: the partition's row range plus a
/// compact CSR over exactly those rows. `row_ptr` is indexed by
/// `row - rows.start` (local), `col_idx` holds global column ids.
#[derive(Clone, Debug)]
pub struct PullPartition<T> {
    /// The rows this partition owns (same range as the mirrored DCSC
    /// partition).
    pub rows: RowRange,
    row_ptr: Vec<usize>,
    col_idx: Vec<Index>,
    values: Vec<T>,
}

impl<T> PullPartition<T> {
    /// Number of stored entries in this partition.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The (global) column indices and values of global row `r`.
    ///
    /// # Panics
    /// Panics if `r` is outside this partition's row range.
    #[inline(always)]
    pub fn row(&self, r: Index) -> (&[Index], &[T]) {
        let local = ix(r - self.rows.start);
        let start = self.row_ptr[local];
        let end = self.row_ptr[local + 1];
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Iterate the partition's rows as `(global_row, col_idx, values)`,
    /// skipping empty rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = (Index, &[Index], &[T])> + '_ {
        (self.rows.start..self.rows.end).filter_map(move |r| {
            let (cols, vals) = self.row(r);
            if cols.is_empty() {
                None
            } else {
                Some((r, cols, vals))
            }
        })
    }
}

/// A sparse matrix stored row-major, split into the same 1-D row partitions
/// as the [`PartitionedDcsc`] it mirrors. This is what the pull kernel
/// ([`crate::spmv::gspmv_csr_pull_into`]) traverses.
#[derive(Clone, Debug)]
pub struct CsrMirror<T> {
    nrows: Index,
    ncols: Index,
    partitions: Vec<PullPartition<T>>,
}

impl<T: Clone> CsrMirror<T> {
    /// Build the row-major mirror of a partitioned DCSC. Within each row,
    /// column ids come out ascending (the DCSC iterates columns in ascending
    /// order), which is what keeps push and pull reductions **bit-for-bit
    /// identical**: both fold a destination's incoming products in ascending
    /// source order.
    pub fn from_partitioned(matrix: &PartitionedDcsc<T>) -> Self {
        let partitions = matrix
            .partitions()
            .iter()
            .map(|p| Self::mirror_partition(&p.matrix, p.rows))
            .collect();
        CsrMirror {
            nrows: matrix.nrows(),
            ncols: matrix.ncols(),
            partitions,
        }
    }

    fn mirror_partition(dcsc: &Dcsc<T>, rows: RowRange) -> PullPartition<T> {
        let local_rows = rows.len();
        let nnz = dcsc.nnz();
        // Counting sort by local row: one pass to count, one to place.
        let mut row_ptr = vec![0usize; local_rows + 1];
        for (r, _, _) in dcsc.iter() {
            row_ptr[ix(r - rows.start) + 1] += 1;
        }
        for i in 1..row_ptr.len() {
            row_ptr[i] += row_ptr[i - 1];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0 as Index; nnz];
        let mut values: Vec<Option<T>> = vec![None; nnz];
        // Column-major iteration → per-row appends arrive in ascending
        // column order, so rows come out sorted without an extra pass.
        for (r, c, v) in dcsc.iter() {
            let slot = next[ix(r - rows.start)];
            col_idx[slot] = c;
            values[slot] = Some(v.clone());
            next[ix(r - rows.start)] += 1;
        }
        PullPartition {
            rows,
            row_ptr,
            col_idx,
            values: values
                .into_iter()
                // audit:allow(no-unwrap): counting-sort invariant — every
                // slot between the row pointers was filled by the scatter
                // loop above.
                .map(|v| v.expect("slot filled"))
                .collect(),
        }
    }
}

impl<T> CsrMirror<T> {
    /// Number of rows of the whole matrix.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns of the whole matrix.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Total number of stored entries across partitions.
    pub fn nnz(&self) -> usize {
        self.partitions.iter().map(|p| p.nnz()).sum()
    }

    /// Number of partitions (same as the mirrored DCSC).
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Access the partitions.
    pub fn partitions(&self) -> &[PullPartition<T>] {
        &self.partitions
    }

    /// Access one partition.
    pub fn partition(&self, i: usize) -> &PullPartition<T> {
        &self.partitions[i]
    }

    /// Total in-memory footprint in bytes (row pointers, column ids and
    /// stored values; zero value bytes when `T = ()`). This is the *extra*
    /// memory a pull-enabled topology pays on top of its DCSC matrices.
    pub fn bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| {
                p.row_ptr.len() * std::mem::size_of::<usize>()
                    + p.col_idx.len() * std::mem::size_of::<Index>()
                    + p.values.len() * std::mem::size_of::<T>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Coo<i32> {
        let mut m = Coo::new(8, 8);
        for c in 1..8 {
            m.push(0, c, c as i32);
        }
        m.push(3, 1, 100);
        m.push(5, 2, 200);
        m.push(5, 7, 201);
        m.push(7, 0, 300);
        m
    }

    #[test]
    fn mirror_preserves_entries_and_partitioning() {
        let coo = sample();
        let pd = PartitionedDcsc::from_coo_balanced(&coo, 3);
        let mirror = CsrMirror::from_partitioned(&pd);
        assert_eq!(mirror.nnz(), pd.nnz());
        assert_eq!(mirror.n_partitions(), pd.n_partitions());
        assert_eq!(mirror.nrows(), pd.nrows());
        let mut got: Vec<(u32, u32, i32)> = mirror
            .partitions()
            .iter()
            .flat_map(|p| p.iter_rows())
            .flat_map(|(r, cols, vals)| cols.iter().zip(vals).map(move |(c, v)| (r, *c, *v)))
            .collect();
        let mut expect: Vec<(u32, u32, i32)> =
            coo.entries().iter().map(|&(r, c, v)| (r, c, v)).collect();
        got.sort();
        expect.sort();
        assert_eq!(got, expect);
        // Same ranges as the mirrored DCSC.
        for (mp, dp) in mirror.partitions().iter().zip(pd.partitions()) {
            assert_eq!(mp.rows, dp.rows);
        }
    }

    #[test]
    fn rows_are_sorted_by_column() {
        let pd = PartitionedDcsc::from_coo_even(&sample(), 2);
        let mirror = CsrMirror::from_partitioned(&pd);
        let (cols, vals) = mirror.partition(0).row(0);
        assert_eq!(cols, &[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(vals, &[1, 2, 3, 4, 5, 6, 7]);
        for p in mirror.partitions() {
            for (_, cols, _) in p.iter_rows() {
                assert!(cols.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn empty_rows_are_skipped_by_iter_rows() {
        let pd = PartitionedDcsc::from_coo_even(&sample(), 2);
        let mirror = CsrMirror::from_partitioned(&pd);
        let nonempty: Vec<u32> = mirror
            .partitions()
            .iter()
            .flat_map(|p| p.iter_rows().map(|(r, _, _)| r))
            .collect();
        assert_eq!(nonempty, vec![0, 3, 5, 7]);
    }

    #[test]
    fn unweighted_mirror_stores_no_value_bytes() {
        let coo = sample();
        let weighted = CsrMirror::from_partitioned(&PartitionedDcsc::from_coo_even(&coo, 2));
        let unweighted =
            CsrMirror::from_partitioned(&PartitionedDcsc::from_coo_even(&coo.map(|_| ()), 2));
        assert_eq!(
            weighted.bytes() - unweighted.bytes(),
            weighted.nnz() * std::mem::size_of::<i32>()
        );
    }
}
