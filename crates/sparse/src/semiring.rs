//! Generalized multiply/add pairs (semirings).
//!
//! The paper frames graph traversal as SpMV over a semiring (§2, §4.2):
//! "overloading the multiply and add operations of a SPMV can produce
//! different graph algorithms". A [`Semiring`] bundles the two user-defined
//! operations — `multiply` plays the role of `PROCESS_MESSAGE` restricted to
//! (message, edge) inputs, and `add` plays the role of `REDUCE`.
//!
//! The full GraphMat engine in `graphmat-core` uses a richer signature (the
//! destination vertex's property is also an input to `process_message`,
//! which is GraphMat's productivity advantage over CombBLAS), but the plain
//! semiring form is what the standalone SpMV/SpGEMM kernels here and the
//! CombBLAS-style baseline use.

/// A generalized (multiply, add) pair over message type `X`, edge type `E`
/// and accumulator type `Y`.
pub trait Semiring: Sync {
    /// Input (message) element type.
    type X;
    /// Matrix (edge) element type.
    type E;
    /// Output (accumulator) element type.
    type Y;

    /// The generalized multiplication: combine an input-vector element with a
    /// matrix element.
    fn multiply(&self, x: &Self::X, e: &Self::E) -> Self::Y;

    /// The generalized addition: fold `value` into the accumulator.
    fn add(&self, acc: &mut Self::Y, value: Self::Y);
}

/// Ordinary arithmetic `(+, ×)` over `f64` — linear-algebra SpMV, PageRank.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlusTimes;

impl Semiring for PlusTimes {
    type X = f64;
    type E = f64;
    type Y = f64;

    #[inline(always)]
    fn multiply(&self, x: &f64, e: &f64) -> f64 {
        x * e
    }

    #[inline(always)]
    fn add(&self, acc: &mut f64, value: f64) {
        *acc += value;
    }
}

/// Tropical `(min, +)` semiring over `f32` — shortest paths (SSSP).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type X = f32;
    type E = f32;
    type Y = f32;

    #[inline(always)]
    fn multiply(&self, x: &f32, e: &f32) -> f32 {
        x + e
    }

    #[inline(always)]
    fn add(&self, acc: &mut f32, value: f32) {
        if value < *acc {
            *acc = value;
        }
    }
}

/// Boolean `(or, and)` semiring — reachability / BFS frontiers.
#[derive(Clone, Copy, Debug, Default)]
pub struct OrAnd;

impl Semiring for OrAnd {
    type X = bool;
    type E = bool;
    type Y = bool;

    #[inline(always)]
    fn multiply(&self, x: &bool, e: &bool) -> bool {
        *x && *e
    }

    #[inline(always)]
    fn add(&self, acc: &mut bool, value: bool) {
        *acc = *acc || value;
    }
}

/// Counting semiring `(+, 1)` over unsigned integers: every traversed edge
/// contributes one, regardless of the message — in/out-degree computation
/// (the paper's Figure 1 example).
#[derive(Clone, Copy, Debug, Default)]
pub struct CountEdges;

impl Semiring for CountEdges {
    type X = u64;
    type E = ();
    type Y = u64;

    #[inline(always)]
    fn multiply(&self, x: &u64, _e: &()) -> u64 {
        *x
    }

    #[inline(always)]
    fn add(&self, acc: &mut u64, value: u64) {
        *acc += value;
    }
}

/// A semiring assembled from two closures; convenient for tests and one-off
/// kernels.
#[derive(Clone, Copy)]
pub struct FnSemiring<X, E, Y, M, A> {
    multiply: M,
    add: A,
    _marker: std::marker::PhantomData<fn(&X, &E) -> Y>,
}

impl<X, E, Y, M, A> FnSemiring<X, E, Y, M, A>
where
    M: Fn(&X, &E) -> Y + Sync,
    A: Fn(&mut Y, Y) + Sync,
{
    /// Build a semiring from a multiply and an add closure.
    pub fn new(multiply: M, add: A) -> Self {
        FnSemiring {
            multiply,
            add,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<X, E, Y, M, A> Semiring for FnSemiring<X, E, Y, M, A>
where
    M: Fn(&X, &E) -> Y + Sync,
    A: Fn(&mut Y, Y) + Sync,
{
    type X = X;
    type E = E;
    type Y = Y;

    #[inline(always)]
    fn multiply(&self, x: &X, e: &E) -> Y {
        (self.multiply)(x, e)
    }

    #[inline(always)]
    fn add(&self, acc: &mut Y, value: Y) {
        (self.add)(acc, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_is_arithmetic() {
        let s = PlusTimes;
        assert_eq!(s.multiply(&3.0, &4.0), 12.0);
        let mut acc = 1.0;
        s.add(&mut acc, 2.5);
        assert_eq!(acc, 3.5);
    }

    #[test]
    fn min_plus_takes_minimum() {
        let s = MinPlus;
        assert_eq!(s.multiply(&3.0, &4.0), 7.0);
        let mut acc = 10.0f32;
        s.add(&mut acc, 7.0);
        assert_eq!(acc, 7.0);
        s.add(&mut acc, 9.0);
        assert_eq!(acc, 7.0);
    }

    #[test]
    fn or_and_is_boolean() {
        let s = OrAnd;
        assert!(s.multiply(&true, &true));
        assert!(!s.multiply(&true, &false));
        let mut acc = false;
        s.add(&mut acc, false);
        assert!(!acc);
        s.add(&mut acc, true);
        assert!(acc);
    }

    #[test]
    fn count_edges_counts() {
        let s = CountEdges;
        assert_eq!(s.multiply(&1, &()), 1);
        let mut acc = 0u64;
        s.add(&mut acc, 1);
        s.add(&mut acc, 1);
        assert_eq!(acc, 2);
    }

    #[test]
    fn fn_semiring_wraps_closures() {
        let s = FnSemiring::new(
            |x: &i32, e: &i32| x * e,
            |acc: &mut i32, v| *acc = (*acc).max(v),
        );
        assert_eq!(s.multiply(&2, &5), 10);
        let mut acc = 3;
        s.add(&mut acc, 10);
        assert_eq!(acc, 10);
        s.add(&mut acc, 4);
        assert_eq!(acc, 10);
    }
}
