//! The `shard-check` dynamic race detector: a runtime shadow of the
//! disjoint-write protocol.
//!
//! The engine's unsafe concurrency core is built on one informal argument,
//! repeated at every site: *each lane owns a disjoint set of rows / words /
//! slots, so plain (or per-value non-atomic) writes cannot race*. This
//! module makes that argument checkable on stable toolchains with no
//! external tooling — a ThreadSanitizer substitute that works offline.
//!
//! Compiled only under `--features shard-check`, each protected structure
//! carries a [`ClaimMap`]: one atomic cell per row/word/slot. Before a lane
//! performs the raw write the real protocol relies on, it *claims* the cell
//! with its [`lane_id`]. Two claim disciplines exist because the protocol
//! has two ownership shapes:
//!
//! * [`ClaimMap::claim_owner`] — *sticky ownership*: the first claimant owns
//!   the cell for the whole parallel region and may re-claim it freely
//!   (`Sharded::merge` merges into the same row many times from one lane).
//!   A claim by any second lane panics.
//! * [`ClaimMap::claim_exclusive`] — *write-once*: every claim must find the
//!   cell unclaimed (`run_dynamic` result slots, APPLY property slots,
//!   word-range chunks). Even a same-lane double claim panics, because a
//!   second write is a protocol violation regardless of which lane does it.
//!
//! Claims happen **before** the shadowed write, so the panic fires before
//! any undefined behaviour — the detector turns a silent race into a
//! deterministic panic naming the structure, the index, and both lane ids.
//!
//! Release builds never see any of this: the feature is off by default and
//! `BENCH_<n>.json` A/B runs confirm the instrumented types compile back to
//! their unchecked shapes (see `crates/bench/README.md`).

use std::sync::atomic::{AtomicU32, Ordering};

/// Process-wide monotonically increasing lane-id source (0 is reserved for
/// "unclaimed").
static NEXT_LANE: AtomicU32 = AtomicU32::new(1);

std::thread_local! {
    static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the current thread, stable for the thread's
/// lifetime and never 0. Reported in violation diagnostics. (This is a
/// detector-local id, not the executor's lane number: the executor reuses
/// pooled threads, so the mapping is stable across supersteps.)
pub fn lane_id() -> u32 {
    LANE.with(|l| *l)
}

/// One atomic claim cell per protected row/word/slot: 0 = unclaimed,
/// otherwise the claiming thread's [`lane_id`].
pub struct ClaimMap {
    claims: Vec<AtomicU32>,
    label: &'static str,
}

impl ClaimMap {
    /// A map of `len` unclaimed cells; `label` names the protected
    /// structure in violation panics.
    pub fn new(len: usize, label: &'static str) -> ClaimMap {
        ClaimMap {
            claims: (0..len).map(|_| AtomicU32::new(0)).collect(),
            label,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.claims.len()
    }

    /// Whether the map has no cells.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }

    /// The structure label.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Release every claim — call at the start of each parallel region so
    /// ownership from the previous region does not carry over.
    pub fn reset(&self) {
        for cell in &self.claims {
            cell.store(0, Ordering::Relaxed);
        }
    }

    /// Sticky-ownership claim: first claimant wins the cell for the whole
    /// region; re-claims by the same lane are fine; any other lane panics.
    #[track_caller]
    pub fn claim_owner(&self, i: usize) {
        let lane = lane_id();
        let cell = &self.claims[i];
        match cell.compare_exchange(0, lane, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {}
            Err(owner) if owner == lane => {}
            Err(owner) => self.violation(i, owner, lane, "claimed by two lanes"),
        }
    }

    /// Write-once claim: the cell must be unclaimed; even the same lane
    /// claiming twice panics (a double write is a violation whoever does it).
    #[track_caller]
    pub fn claim_exclusive(&self, i: usize) {
        let lane = lane_id();
        let cell = &self.claims[i];
        match cell.compare_exchange(0, lane, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {}
            Err(owner) => self.violation(i, owner, lane, "written twice"),
        }
    }

    #[track_caller]
    fn violation(&self, i: usize, owner: u32, lane: u32, kind: &str) -> ! {
        // audit:allow(no-unwrap): the detector's entire purpose — a claim
        // violation means the disjointness invariant the unsafe writes rely
        // on is broken, and the panic must fire before the racing write.
        panic!(
            "shard-check: {}[{i}] {kind} (owner lane {owner}, second claim by lane {lane}); \
             the disjoint-write invariant the unsafe fast path relies on is violated",
            self.label
        );
    }
}

impl std::fmt::Debug for ClaimMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClaimMap")
            .field("label", &self.label)
            .field("len", &self.claims.len())
            .finish()
    }
}

/// Cloning a map clones its *shape* (length and label), not its claims: a
/// cloned `SparseVector` is an independent structure whose regions start
/// unclaimed.
impl Clone for ClaimMap {
    fn clone(&self) -> ClaimMap {
        ClaimMap::new(self.claims.len(), self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn owner_can_reclaim_exclusive_cannot() {
        let map = ClaimMap::new(4, "test");
        map.claim_owner(2);
        map.claim_owner(2); // same lane: fine
        let err = catch_unwind(AssertUnwindSafe(|| {
            let fresh = ClaimMap::new(4, "test");
            fresh.claim_exclusive(1);
            fresh.claim_exclusive(1); // same lane, write-once: fires
        }));
        assert!(err.is_err());
    }

    #[test]
    fn cross_thread_owner_claim_fires() {
        let map = ClaimMap::new(8, "cross");
        map.claim_owner(3);
        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| catch_unwind(AssertUnwindSafe(|| map.claim_owner(3))))
                .join()
        });
        match result {
            Ok(caught) => assert!(caught.is_err(), "second lane's claim must panic"),
            Err(_) => panic!("detector thread itself must not die"),
        }
    }

    #[test]
    fn reset_releases_claims() {
        let map = ClaimMap::new(2, "reset");
        map.claim_exclusive(0);
        map.reset();
        map.claim_exclusive(0); // fresh region: fine again
    }

    #[test]
    fn lane_ids_are_stable_and_nonzero() {
        assert_ne!(lane_id(), 0);
        assert_eq!(lane_id(), lane_id());
        let other = std::thread::spawn(lane_id)
            .join()
            .unwrap_or_else(|_| panic!("join"));
        assert_ne!(other, lane_id());
    }

    #[test]
    fn clone_copies_shape_not_claims() {
        let map = ClaimMap::new(3, "clone");
        map.claim_exclusive(1);
        let copy = map.clone();
        assert_eq!(copy.len(), 3);
        assert_eq!(copy.label(), "clone");
        copy.claim_exclusive(1); // independent claims
    }
}
