//! Sparse matrix – sparse matrix multiplication (SpGEMM).
//!
//! GraphMat itself never multiplies two matrices — that is the point of its
//! triangle-counting formulation (§4.2). The kernel exists here because the
//! *CombBLAS-style baseline* has no access to destination-vertex state during
//! message processing and therefore has to count triangles the pure-matrix
//! way, `sum((A·A) .* A)`, which the paper reports as 36× slower and
//! memory-hungry (Figure 4c). Implementing the kernel lets the benchmark
//! harness reproduce that blow-up honestly.
//!
//! Both a plain and a *masked* SpGEMM are provided. The masked variant only
//! materialises output entries present in the mask, which is how a competent
//! matrix framework would implement the triangle count; the plain variant is
//! what a naive one does (and what overflows memory on large graphs).

use crate::coo::Coo;
use crate::csr::Csr;
use crate::semiring::Semiring;
use crate::{ix, Index};

/// Plain SpGEMM: `C = A ⊗ B` over the given semiring, with `A: m×k`, `B: k×n`.
///
/// `A` holds the semiring's input (`X`) elements and `B` its matrix (`E`)
/// elements, so `multiply(a_ik, b_kj)` type-checks directly.
///
/// Uses Gustavson's algorithm with a dense accumulator per output row.
///
/// # Panics
/// Panics if the inner dimensions do not agree.
pub fn spgemm<S>(a: &Csr<S::X>, b: &Csr<S::E>, semiring: &S) -> Csr<S::Y>
where
    S: Semiring,
    S::X: Clone,
    S::E: Clone,
    S::Y: Clone + PartialEq,
{
    assert_eq!(a.ncols(), b.nrows(), "SpGEMM inner dimension mismatch");
    let m = a.nrows();
    let n = b.ncols();
    let mut out = Coo::with_capacity(m, n, a.nnz());

    // Dense sparse-accumulator (SPA) reused across rows.
    let mut acc: Vec<Option<S::Y>> = vec![None; ix(n)];
    let mut touched: Vec<Index> = Vec::new();

    for i in 0..m {
        let (a_cols, a_vals) = a.row(i);
        for (kk, av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(*kk);
            for (j, bv) in b_cols.iter().zip(b_vals) {
                let product = semiring.multiply(av, bv);
                match &mut acc[ix(*j)] {
                    Some(existing) => semiring.add(existing, product),
                    slot @ None => {
                        *slot = Some(product);
                        touched.push(*j);
                    }
                }
            }
        }
        touched.sort_unstable();
        for j in touched.drain(..) {
            if let Some(v) = acc[ix(j)].take() {
                out.push(i, j, v);
            }
        }
    }
    Csr::from_coo(&out)
}

/// Masked SpGEMM: compute only the entries of `A ⊗ B` whose coordinates are
/// present in `mask`, returning them as a COO. This is the
/// `C = (A·B) .* mask` pattern used by matrix-style triangle counting.
pub fn spgemm_masked<S, M>(a: &Csr<S::X>, b: &Csr<S::E>, mask: &Csr<M>, semiring: &S) -> Coo<S::Y>
where
    S: Semiring,
    S::X: Clone,
    S::E: Clone,
    S::Y: Clone,
{
    assert_eq!(a.ncols(), b.nrows(), "SpGEMM inner dimension mismatch");
    assert_eq!(mask.nrows(), a.nrows(), "mask row mismatch");
    assert_eq!(mask.ncols(), b.ncols(), "mask column mismatch");
    let m = a.nrows();
    let mut out = Coo::with_capacity(m, b.ncols(), mask.nnz());

    for i in 0..m {
        let (mask_cols, _) = mask.row(i);
        if mask_cols.is_empty() {
            continue;
        }
        let (a_cols, a_vals) = a.row(i);
        // accumulate only at masked positions: for each masked j, compute
        // dot(A[i,:], B[:,j]) by merging the sorted row of A with rows of B.
        for &j in mask_cols {
            let mut acc: Option<S::Y> = None;
            for (kk, av) in a_cols.iter().zip(a_vals) {
                if let Some(bv) = b.get(*kk, j) {
                    let product = semiring.multiply(av, bv);
                    match &mut acc {
                        Some(existing) => semiring.add(existing, product),
                        slot @ None => *slot = Some(product),
                    }
                }
            }
            if let Some(v) = acc {
                out.push(i, j, v);
            }
        }
    }
    out
}

/// Sum all values of a COO result (used to total triangle counts).
pub fn sum_values<T, Acc>(coo: &Coo<T>, init: Acc, mut fold: impl FnMut(Acc, &T) -> Acc) -> Acc {
    coo.entries()
        .iter()
        .fold(init, |acc, (_, _, v)| fold(acc, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;

    fn csr_from(entries: &[(u32, u32, f64)], n: u32) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for &(r, c, v) in entries {
            coo.push(r, c, v);
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn spgemm_matches_dense_multiplication() {
        let a = csr_from(&[(0, 0, 1.0), (0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)], 3);
        let b = csr_from(&[(0, 1, 5.0), (1, 2, 6.0), (2, 0, 7.0)], 3);
        let c = spgemm(&a, &b, &PlusTimes);
        let ad = a.to_dense();
        let bd = b.to_dense();
        let cd = c.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                let expect: f64 = (0..3).map(|k| ad[i][k] * bd[k][j]).sum();
                assert!((cd[i][j] - expect).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn spgemm_identity() {
        let a = csr_from(&[(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)], 3);
        let id = csr_from(&[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)], 3);
        let c = spgemm(&a, &id, &PlusTimes);
        assert_eq!(c.to_dense(), a.to_dense());
    }

    #[test]
    #[should_panic]
    fn spgemm_dimension_mismatch_panics() {
        let a = csr_from(&[(0, 0, 1.0)], 2);
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0);
        let b = Csr::from_coo(&coo);
        let _ = spgemm(&a, &b, &PlusTimes);
    }

    #[test]
    fn masked_spgemm_counts_triangles() {
        // Undirected triangle 0-1-2 plus a pendant edge 2-3, as an upper
        // triangular (DAG) adjacency matrix with unit weights.
        let adj = csr_from(&[(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)], 4);
        // triangles = sum((A·A) .* A)
        let masked = spgemm_masked(&adj, &adj, &adj, &PlusTimes);
        let total = sum_values(&masked, 0.0, |acc, v| acc + v);
        assert_eq!(total, 1.0);
    }

    #[test]
    fn masked_spgemm_two_triangles() {
        // triangles: (0,1,2) and (1,2,3)
        let adj = csr_from(
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 1.0),
            ],
            4,
        );
        let masked = spgemm_masked(&adj, &adj, &adj, &PlusTimes);
        let total = sum_values(&masked, 0.0, |acc, v| acc + v);
        assert_eq!(total, 2.0);
    }

    #[test]
    fn masked_spgemm_subset_of_plain() {
        let a = csr_from(&[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 0, 1.0)], 3);
        let plain = spgemm(&a, &a, &PlusTimes);
        let masked = spgemm_masked(&a, &a, &a, &PlusTimes);
        for (r, c, v) in masked.entries() {
            assert_eq!(plain.get(*r, *c), Some(v), "({r},{c})");
        }
        assert!(masked.nnz() <= plain.nnz());
    }

    #[test]
    fn spgemm_empty_matrices() {
        let a: Csr<f64> = Csr::from_coo(&Coo::new(3, 3));
        let c = spgemm(&a, &a, &PlusTimes);
        assert_eq!(c.nnz(), 0);
        let masked = spgemm_masked(&a, &a, &a, &PlusTimes);
        assert_eq!(masked.nnz(), 0);
    }
}
