//! Generalized sparse matrix – sparse vector multiplication.
//!
//! This is Algorithm 1 of the paper: walk the non-empty columns `j` of (a
//! partition of) `Gᵀ`; if `j` is present in the sparse input vector `x`,
//! combine `x[j]` with every stored entry `(k, j)` using the generalized
//! multiply, and fold the results into `y[k]` with the generalized add.
//!
//! Three entry points are provided:
//!
//! * [`gspmv_dcsc`] — sequential kernel over a single DCSC, generic over the
//!   multiply/add closures (the multiply also receives the destination row
//!   index `k`, which is how `graphmat-core` gives `PROCESS_MESSAGE` access
//!   to the destination vertex's property — GraphMat's key frontend
//!   extension over CombBLAS, §4.2).
//! * [`gspmv_into`] / [`gspmv`] — partition-parallel kernel over a
//!   [`PartitionedDcsc`], using an [`Executor`] for dynamic scheduling. Each
//!   partition owns a disjoint row range, so all partitions write directly
//!   into **one** shared output vector through a disjoint-row-range writer —
//!   no per-partition partial vectors, no stitch pass, zero allocation in
//!   `gspmv_into` (see its "Allocation contract" section).
//! * [`gspmv_semiring`] — convenience wrapper taking a [`Semiring`] instead
//!   of closures (used by the plain linear-algebra benches and the
//!   CombBLAS-style baseline).
//! * [`gspmv_csr_pull_into`] — the row-parallel **dense pull** kernel over a
//!   [`CsrMirror`], used by the direction-optimized engine when the frontier
//!   is dense (reads a [`DenseVector`] by index; writes each output row
//!   exactly once, with no sharded scatter).

use crate::dcsc::Dcsc;
use crate::parallel::Executor;
use crate::partition::PartitionedDcsc;
use crate::pull::CsrMirror;
use crate::semiring::Semiring;
use crate::spvec::{DenseVector, MessageVector, SparseVector};
use crate::Index;

/// Sequential generalized SpMV over a single DCSC matrix.
///
/// * `multiply(x_j, edge, k)` — combine the input-vector entry at column `j`
///   with the matrix entry at `(k, j)`; `k` is the destination row.
/// * `add(acc, value)` — fold a product into the accumulator for row `k`.
///
/// Returns a sparse vector whose set entries are exactly the rows that
/// received at least one product.
pub fn gspmv_dcsc<X, E, Y, V, M, A>(
    matrix: &Dcsc<E>,
    x: &V,
    multiply: &M,
    add: &A,
) -> SparseVector<Y>
where
    V: MessageVector<X>,
    Y: Clone + Default,
    M: Fn(&X, &E, Index) -> Y,
    A: Fn(&mut Y, Y),
{
    let mut y: SparseVector<Y> = SparseVector::new(matrix.nrows() as usize);
    gspmv_dcsc_into(matrix, x, multiply, add, &mut y);
    y
}

/// Like [`gspmv_dcsc`] but accumulating into an existing output vector
/// (entries already present are folded into with `add`).
pub fn gspmv_dcsc_into<X, E, Y, V, M, A>(
    matrix: &Dcsc<E>,
    x: &V,
    multiply: &M,
    add: &A,
    y: &mut SparseVector<Y>,
) where
    V: MessageVector<X>,
    Y: Clone + Default,
    M: Fn(&X, &E, Index) -> Y,
    A: Fn(&mut Y, Y),
{
    walk_columns(matrix, x, multiply, |k, product| {
        y.merge(k, product, |acc, v| add(acc, v))
    });
}

/// The Algorithm-1 column walk shared by the sequential and parallel kernels:
/// for each non-empty column `j` of (a partition of) `Gᵀ` present in `x`,
/// multiply `x[j]` against every stored entry `(k, j)` and hand the
/// `(row, product)` pair to `sink` — which reduces into either a plain
/// [`SparseVector`] or a shard of one.
#[inline(always)]
fn walk_columns<X, E, Y, V, M>(
    matrix: &Dcsc<E>,
    x: &V,
    multiply: &M,
    mut sink: impl FnMut(Index, Y),
) where
    V: MessageVector<X>,
    M: Fn(&X, &E, Index) -> Y,
{
    for (j, rows, edges) in matrix.iter_cols() {
        if let Some(xj) = x.get(j) {
            for (k, e) in rows.iter().zip(edges) {
                sink(*k, multiply(xj, e, *k));
            }
        }
    }
}

/// Partition-parallel generalized SpMV (Algorithm 1 + optimizations 3 and 4
/// of §4.5), writing into a caller-provided output vector.
///
/// `y` is cleared and then filled in place. All partitions write directly
/// into `y` through a disjoint-row-range writer ([`SparseVector::sharded`]):
/// each partition owns a contiguous, non-overlapping row range (a
/// [`PartitionedDcsc`] construction invariant), so no two tasks ever touch
/// the same output entry and no stitching pass is needed.
///
/// # Allocation contract
///
/// Steady-state cost is **O(active entries) work and zero allocation** —
/// this function never allocates, regardless of thread or partition count.
/// The first version of this kernel allocated one O(n) `SparseVector` per
/// partition (O(n · partitions) zero-initialised memory per superstep with
/// the paper's `8 × threads` partitioning) and then stitched the partials
/// sequentially; that cost is gone. Callers running many supersteps should
/// reuse one `y` across calls (the engine's workspace does exactly that).
pub fn gspmv_into<X, E, Y, V, M, A>(
    matrix: &PartitionedDcsc<E>,
    x: &V,
    multiply: &M,
    add: &A,
    executor: &Executor,
    y: &mut SparseVector<Y>,
) where
    V: MessageVector<X> + Sync,
    X: Sync,
    E: Sync,
    Y: Clone + Default + Send,
    M: Fn(&X, &E, Index) -> Y + Sync,
    A: Fn(&mut Y, Y) + Sync,
{
    assert_eq!(
        y.len(),
        matrix.nrows() as usize,
        "output vector length must match the matrix row count"
    );
    y.clear();
    if x.nnz() == 0 {
        return;
    }
    let nparts = matrix.n_partitions();
    if executor.nthreads() == 1 || nparts == 1 {
        for part in matrix.partitions() {
            gspmv_dcsc_into(&part.matrix, x, multiply, add, y);
        }
        return;
    }

    let shards = y.sharded();
    executor.for_each_dynamic(nparts, |p| {
        let part = matrix.partition(p);
        let mut newly_set = 0usize;
        walk_columns(&part.matrix, x, multiply, |k, product| {
            // SAFETY: partitions own disjoint row ranges, so row `k` is
            // merged by this task only (the same argument that makes the
            // runner's parallel APPLY sound).
            unsafe { shards.merge(k, product, &mut newly_set, |acc, v| add(acc, v)) };
        });
        shards.commit(newly_set);
    });
    drop(shards); // folds the per-task counts into y's nnz
}

/// Row-parallel generalized SpMV over a row-major [`CsrMirror`] — the
/// **dense pull** backend of the direction-optimized engine.
///
/// Where [`gspmv_into`] *pushes* (walk the non-empty columns present in the
/// sparse input, scatter into output rows), this kernel *pulls*: each task
/// owns one partition of destination rows and, for every row `k`, gathers
/// the row's source entries, probes the dense input vector's validity bitmap
/// per source, multiplies the hits and folds them into a register-resident
/// accumulator — then writes `y[k]` exactly once. No sharded scatter, no
/// atomics anywhere on the write path, perfect write locality; the cost is
/// touching every stored edge of the matrix, which is why the engine only
/// selects this kernel when the frontier is dense enough (Beamer's
/// direction-switching rule).
///
/// Per-destination reduction order is **ascending source id** — the same
/// order the push kernel produces (it walks DCSC columns in ascending
/// order) — so push and pull are bit-for-bit identical even for
/// non-associative floating-point `add`s.
///
/// `y` is cleared and then filled in place; like [`gspmv_into`] this
/// function never allocates.
pub fn gspmv_csr_pull_into<X, E, Y, M, A>(
    mirror: &CsrMirror<E>,
    x: &DenseVector<X>,
    multiply: &M,
    add: &A,
    executor: &Executor,
    y: &mut SparseVector<Y>,
) where
    X: Sync,
    E: Sync,
    Y: Clone + Default + Send,
    M: Fn(&X, &E, Index) -> Y + Sync,
    A: Fn(&mut Y, Y) + Sync,
{
    assert_eq!(
        y.len(),
        mirror.nrows() as usize,
        "output vector length must match the matrix row count"
    );
    assert_eq!(
        x.len(),
        mirror.ncols() as usize,
        "input vector length must match the matrix column count"
    );
    y.clear();
    if x.nnz() == 0 {
        return;
    }
    let nparts = mirror.n_partitions();
    if executor.nthreads() == 1 || nparts == 1 {
        for part in mirror.partitions() {
            for (k, cols, edges) in part.iter_rows() {
                if let Some(acc) = pull_row(x, cols, edges, k, multiply, add) {
                    y.set(k, acc);
                }
            }
        }
        return;
    }

    // Partitions own disjoint row ranges and every row is written at most
    // once, so the sharded handle's insert path is all that runs — the
    // atomics it uses are only for validity words straddling a range
    // boundary.
    let shards = y.sharded();
    executor.for_each_dynamic(nparts, |p| {
        let part = mirror.partition(p);
        let mut newly_set = 0usize;
        for (k, cols, edges) in part.iter_rows() {
            if let Some(acc) = pull_row(x, cols, edges, k, multiply, add) {
                // SAFETY: partitions own disjoint row ranges, so row `k` is
                // written by this task only.
                unsafe { shards.merge(k, acc, &mut newly_set, |slot, v| *slot = v) };
            }
        }
        shards.commit(newly_set);
    });
    drop(shards);
}

/// Gather one destination row: probe the dense input per source (ascending),
/// multiply hits and fold them into a local accumulator.
#[inline(always)]
fn pull_row<X, E, Y, M, A>(
    x: &DenseVector<X>,
    cols: &[Index],
    edges: &[E],
    k: Index,
    multiply: &M,
    add: &A,
) -> Option<Y>
where
    M: Fn(&X, &E, Index) -> Y,
    A: Fn(&mut Y, Y),
{
    let mut acc: Option<Y> = None;
    for (j, e) in cols.iter().zip(edges) {
        if let Some(xj) = x.get(*j) {
            let product = multiply(xj, e, k);
            match &mut acc {
                Some(a) => add(a, product),
                None => acc = Some(product),
            }
        }
    }
    acc
}

/// Partition-parallel generalized SpMV returning a freshly allocated output
/// vector. Convenience wrapper over [`gspmv_into`] — hot loops should call
/// [`gspmv_into`] with a reused vector instead.
pub fn gspmv<X, E, Y, V, M, A>(
    matrix: &PartitionedDcsc<E>,
    x: &V,
    multiply: &M,
    add: &A,
    executor: &Executor,
) -> SparseVector<Y>
where
    V: MessageVector<X> + Sync,
    X: Sync,
    E: Sync,
    Y: Clone + Default + Send,
    M: Fn(&X, &E, Index) -> Y + Sync,
    A: Fn(&mut Y, Y) + Sync,
{
    let mut y: SparseVector<Y> = SparseVector::new(matrix.nrows() as usize);
    gspmv_into(matrix, x, multiply, add, executor, &mut y);
    y
}

/// Generalized SpMV where the multiply/add come from a [`Semiring`].
pub fn gspmv_semiring<S, V>(
    matrix: &PartitionedDcsc<S::E>,
    x: &V,
    semiring: &S,
    executor: &Executor,
) -> SparseVector<S::Y>
where
    S: Semiring,
    S::X: Sync,
    S::E: Sync,
    S::Y: Clone + Default + Send,
    V: MessageVector<S::X> + Sync,
{
    gspmv(
        matrix,
        x,
        &|x: &S::X, e: &S::E, _k: Index| semiring.multiply(x, e),
        &|acc: &mut S::Y, v: S::Y| semiring.add(acc, v),
        executor,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::semiring::{MinPlus, PlusTimes};

    /// The 5-vertex weighted graph of the paper's Figure 3 (SSSP example).
    /// Vertices A..E = 0..4; edges (src, dst, weight).
    fn figure3_graph_transpose() -> Coo<f32> {
        // Gᵀ as drawn in Figure 3(b): row = destination, column = source.
        let edges: [(u32, u32, f32); 7] = [
            (0, 1, 1.0), // A->B w1   => Gᵀ[1][0]
            (0, 2, 3.0), // A->C w3
            (0, 3, 2.0), // A->D w2
            (1, 2, 1.0), // B->C w1
            (2, 3, 2.0), // C->D w2
            (3, 4, 2.0), // D->E w2
            (4, 0, 4.0), // E->A w4
        ];
        let mut gt = Coo::new(5, 5);
        for (src, dst, w) in edges {
            gt.push(dst, src, w); // transpose: row = dst, col = src
        }
        gt
    }

    #[test]
    fn figure3_iteration0_matches_paper() {
        // x = {A: 0}; process = msg + edge; reduce = min
        let gt = PartitionedDcsc::from_coo_even(&figure3_graph_transpose(), 2);
        let mut x: SparseVector<f32> = SparseVector::new(5);
        x.set(0, 0.0);
        let y = gspmv(
            &gt,
            &x,
            &|m: &f32, e: &f32, _| m + e,
            &|acc: &mut f32, v| *acc = acc.min(v),
            &Executor::sequential(),
        );
        // Paper iteration 0 result: B=1, C=3, D=2 (A and E unset)
        assert_eq!(y.to_entries(), vec![(1, 1.0), (2, 3.0), (3, 2.0)]);
    }

    #[test]
    fn figure3_iteration1_matches_paper() {
        let gt = PartitionedDcsc::from_coo_even(&figure3_graph_transpose(), 2);
        // frontier after iteration 0: B=1, C=3, D=2
        let mut x: SparseVector<f32> = SparseVector::new(5);
        x.set(1, 1.0);
        x.set(2, 3.0);
        x.set(3, 2.0);
        let y = gspmv(
            &gt,
            &x,
            &|m: &f32, e: &f32, _| m + e,
            &|acc: &mut f32, v| *acc = acc.min(v),
            &Executor::new(2),
        );
        // Paper iteration 1 reduced values: C=2, D=5, E=4
        assert_eq!(y.to_entries(), vec![(2, 2.0), (3, 5.0), (4, 4.0)]);
    }

    #[test]
    fn in_degree_example_from_figure1() {
        // Figure 1: multiply Gᵀ by all-ones to get in-degrees.
        // Graph: A->B, A->C, B->C, C->D, D->? use 4 vertices A..D
        let mut gt: Coo<f64> = Coo::new(4, 4);
        for (src, dst) in [(0u32, 1u32), (0, 2), (1, 2), (2, 3)] {
            gt.push(dst, src, 1.0);
        }
        let pd = PartitionedDcsc::from_coo_even(&gt, 3);
        let ones = SparseVector::full(4, 1.0f64);
        let y = gspmv_semiring(&pd, &ones, &PlusTimes, &Executor::sequential());
        // in-degrees: A=0 (unset), B=1, C=2, D=1
        assert_eq!(y.get(0), None);
        assert_eq!(y.get(1), Some(&1.0));
        assert_eq!(y.get(2), Some(&2.0));
        assert_eq!(y.get(3), Some(&1.0));
    }

    #[test]
    fn parallel_matches_sequential() {
        // random-ish structured matrix, compare 1-thread vs many-thread output
        let mut coo: Coo<f64> = Coo::new(64, 64);
        let mut state = 12345u64;
        for _ in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = ((state >> 33) % 64) as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let c = ((state >> 33) % 64) as u32;
            coo.push(r, c, ((state >> 40) % 10) as f64 + 1.0);
        }
        coo.dedup_by(|a, _| *a);
        let pd_seq = PartitionedDcsc::from_coo_even(&coo, 1);
        let pd_par = PartitionedDcsc::from_coo_balanced(&coo, 16);
        let mut x: SparseVector<f64> = SparseVector::new(64);
        for i in (0..64).step_by(3) {
            x.set(i, (i + 1) as f64);
        }
        let seq = gspmv_semiring(&pd_seq, &x, &PlusTimes, &Executor::sequential());
        let par = gspmv_semiring(&pd_par, &x, &PlusTimes, &Executor::new(4));
        assert_eq!(seq.to_entries(), par.to_entries());
    }

    #[test]
    fn shared_output_matches_stitch_on_unbalanced_partitions() {
        // Regression test for the shared-output rewrite of `gspmv`: heavily
        // unbalanced partitions (one huge, several tiny, boundaries inside a
        // single 64-bit bitmap word) must produce exactly what sequential
        // per-partition accumulation — the old stitch path — produced.
        use crate::partition::RowRange;
        let n = 150u32;
        let mut coo: Coo<i64> = Coo::new(n, n);
        let mut state = 99u64;
        for _ in 0..1200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = ((state >> 33) % 150) as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let c = ((state >> 33) % 150) as u32;
            coo.push(r, c, ((state >> 40) % 100) as i64 - 50);
        }
        // Word-unaligned, very skewed ranges: 0..130 | 130..131 | 131..133 | 133..150
        let ranges = [
            RowRange { start: 0, end: 130 },
            RowRange {
                start: 130,
                end: 131,
            },
            RowRange {
                start: 131,
                end: 133,
            },
            RowRange {
                start: 133,
                end: 150,
            },
        ];
        let pd = PartitionedDcsc::from_coo(&coo, &ranges);
        let mut x: SparseVector<i64> = SparseVector::new(n as usize);
        for i in (0..n).step_by(2) {
            x.set(i, i as i64 + 1);
        }

        // Old stitch-path semantics: sequential partial per partition, then set.
        let mut stitched: SparseVector<i64> = SparseVector::new(n as usize);
        for part in pd.partitions() {
            let partial: SparseVector<i64> =
                gspmv_dcsc(&part.matrix, &x, &|m, e, _| m * e, &|a: &mut i64, v| {
                    *a += v
                });
            for (k, v) in partial.iter() {
                stitched.set(k, *v);
            }
        }

        let shared = gspmv(
            &pd,
            &x,
            &|m: &i64, e: &i64, _| m * e,
            &|a: &mut i64, v| *a += v,
            &Executor::new(4),
        );
        assert_eq!(shared.nnz(), stitched.nnz());
        assert_eq!(shared.to_entries(), stitched.to_entries());
    }

    #[test]
    fn gspmv_into_reuses_output_and_clears_stale_entries() {
        let gt = PartitionedDcsc::from_coo_even(&figure3_graph_transpose(), 2);
        let mut y: SparseVector<f32> = SparseVector::new(5);
        let ex = Executor::new(2);
        // First superstep: frontier {A}.
        let mut x: SparseVector<f32> = SparseVector::new(5);
        x.set(0, 0.0);
        gspmv_into(
            &gt,
            &x,
            &|m: &f32, e: &f32, _| m + e,
            &|acc: &mut f32, v| *acc = acc.min(v),
            &ex,
            &mut y,
        );
        assert_eq!(y.to_entries(), vec![(1, 1.0), (2, 3.0), (3, 2.0)]);
        // Reuse y for a different frontier: stale entries must vanish.
        x.clear();
        x.set(3, 2.0);
        gspmv_into(
            &gt,
            &x,
            &|m: &f32, e: &f32, _| m + e,
            &|acc: &mut f32, v| *acc = acc.min(v),
            &ex,
            &mut y,
        );
        assert_eq!(y.to_entries(), vec![(4, 4.0)]);
    }

    #[test]
    fn matches_dense_reference() {
        let mut coo: Coo<f64> = Coo::new(10, 10);
        for i in 0..10u32 {
            for j in 0..10u32 {
                if (i * 7 + j * 3) % 4 == 0 {
                    coo.push(i, j, (i + 2 * j) as f64);
                }
            }
        }
        let dense = crate::csr::Csr::from_coo(&coo).to_dense();
        let pd = PartitionedDcsc::from_coo_balanced(&coo, 4);
        let x_dense: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        let mut x: SparseVector<f64> = SparseVector::new(10);
        for (i, v) in x_dense.iter().enumerate() {
            x.set(i as u32, *v);
        }
        let y = gspmv_semiring(&pd, &x, &PlusTimes, &Executor::new(2));
        for (r, row) in dense.iter().enumerate() {
            let expect: f64 = (0..10).map(|c| row[c] * x_dense[c]).sum();
            let got = y.get(r as u32).copied().unwrap_or(0.0);
            assert!((expect - got).abs() < 1e-9, "row {r}: {expect} vs {got}");
        }
    }

    #[test]
    fn min_plus_semiring_runs() {
        let mut gt: Coo<f32> = Coo::new(3, 3);
        gt.push(1, 0, 5.0);
        gt.push(2, 1, 2.0);
        let pd = PartitionedDcsc::from_coo_even(&gt, 1);
        let mut x: SparseVector<f32> = SparseVector::new(3);
        x.set(0, 0.0);
        x.set(1, 100.0);
        let y = gspmv_semiring(&pd, &x, &MinPlus, &Executor::sequential());
        assert_eq!(y.get(1), Some(&5.0));
        assert_eq!(y.get(2), Some(&102.0));
    }

    #[test]
    fn empty_frontier_produces_empty_output() {
        let gt = PartitionedDcsc::from_coo_even(&figure3_graph_transpose(), 2);
        let x: SparseVector<f32> = SparseVector::new(5);
        let y = gspmv(
            &gt,
            &x,
            &|m: &f32, e: &f32, _| m + e,
            &|acc: &mut f32, v| *acc = acc.min(v),
            &Executor::new(2),
        );
        assert_eq!(y.nnz(), 0);
    }

    #[test]
    fn pull_matches_push_on_figure3() {
        let gt = PartitionedDcsc::from_coo_even(&figure3_graph_transpose(), 2);
        let mirror = CsrMirror::from_partitioned(&gt);
        let ex = Executor::new(2);
        // frontier after iteration 0: B=1, C=3, D=2
        let mut push_x: SparseVector<f32> = SparseVector::new(5);
        let mut pull_x: DenseVector<f32> = DenseVector::new(5);
        for (i, v) in [(1u32, 1.0f32), (2, 3.0), (3, 2.0)] {
            push_x.set(i, v);
            pull_x.set(i, v);
        }
        let multiply = |m: &f32, e: &f32, _: Index| m + e;
        let add = |acc: &mut f32, v: f32| *acc = acc.min(v);
        let push: SparseVector<f32> = gspmv(&gt, &push_x, &multiply, &add, &ex);
        let mut pull: SparseVector<f32> = SparseVector::new(5);
        gspmv_csr_pull_into(&mirror, &pull_x, &multiply, &add, &ex, &mut pull);
        assert_eq!(pull.to_entries(), push.to_entries());
        assert_eq!(pull.to_entries(), vec![(2, 2.0), (3, 5.0), (4, 4.0)]);
    }

    #[test]
    fn pull_matches_push_on_random_matrix_all_densities() {
        let mut coo: Coo<i64> = Coo::new(150, 150);
        let mut state = 7u64;
        for _ in 0..1500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = ((state >> 33) % 150) as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let c = ((state >> 33) % 150) as u32;
            coo.push(r, c, ((state >> 40) % 100) as i64 - 50);
        }
        let pd = PartitionedDcsc::from_coo_balanced(&coo, 7);
        let mirror = CsrMirror::from_partitioned(&pd);
        let multiply = |m: &i64, e: &i64, k: Index| m * e + k as i64;
        let add = |acc: &mut i64, v: i64| *acc += v;
        for stride in [1usize, 2, 17, 149] {
            let mut push_x: SparseVector<i64> = SparseVector::new(150);
            let mut pull_x: DenseVector<i64> = DenseVector::new(150);
            for i in (0..150).step_by(stride) {
                push_x.set(i as Index, i as i64 + 1);
                pull_x.set(i as Index, i as i64 + 1);
            }
            for threads in [1usize, 4] {
                let ex = Executor::new(threads);
                let push: SparseVector<i64> = gspmv(&pd, &push_x, &multiply, &add, &ex);
                let mut pull: SparseVector<i64> = SparseVector::new(150);
                gspmv_csr_pull_into(&mirror, &pull_x, &multiply, &add, &ex, &mut pull);
                assert_eq!(
                    pull.to_entries(),
                    push.to_entries(),
                    "stride {stride}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn pull_reuses_output_and_clears_stale_entries() {
        let gt = PartitionedDcsc::from_coo_even(&figure3_graph_transpose(), 2);
        let mirror = CsrMirror::from_partitioned(&gt);
        let ex = Executor::sequential();
        let multiply = |m: &f32, e: &f32, _: Index| m + e;
        let add = |acc: &mut f32, v: f32| *acc = acc.min(v);
        let mut y: SparseVector<f32> = SparseVector::new(5);
        let mut x: DenseVector<f32> = DenseVector::new(5);
        x.set(0, 0.0);
        gspmv_csr_pull_into(&mirror, &x, &multiply, &add, &ex, &mut y);
        assert_eq!(y.to_entries(), vec![(1, 1.0), (2, 3.0), (3, 2.0)]);
        x.clear();
        x.set(3, 2.0);
        gspmv_csr_pull_into(&mirror, &x, &multiply, &add, &ex, &mut y);
        assert_eq!(y.to_entries(), vec![(4, 4.0)]);
    }

    #[test]
    fn pull_empty_frontier_produces_empty_output() {
        let gt = PartitionedDcsc::from_coo_even(&figure3_graph_transpose(), 2);
        let mirror = CsrMirror::from_partitioned(&gt);
        let x: DenseVector<f32> = DenseVector::new(5);
        let mut y: SparseVector<f32> = SparseVector::new(5);
        gspmv_csr_pull_into(
            &mirror,
            &x,
            &|m: &f32, e: &f32, _| m + e,
            &|acc: &mut f32, v| *acc = acc.min(v),
            &Executor::new(2),
            &mut y,
        );
        assert_eq!(y.nnz(), 0);
    }

    #[test]
    fn multiply_sees_destination_row() {
        // The destination row index must be passed through so the engine can
        // read destination vertex state (GraphMat's extension, §4.2).
        let mut gt: Coo<i32> = Coo::new(4, 4);
        gt.push(3, 0, 1);
        gt.push(2, 0, 1);
        let pd = PartitionedDcsc::from_coo_even(&gt, 1);
        let mut x: SparseVector<i32> = SparseVector::new(4);
        x.set(0, 10);
        let y = gspmv(
            &pd,
            &x,
            &|m: &i32, _e: &i32, k: Index| m + k as i32,
            &|acc: &mut i32, v| *acc += v,
            &Executor::sequential(),
        );
        assert_eq!(y.get(2), Some(&12));
        assert_eq!(y.get(3), Some(&13));
    }
}
