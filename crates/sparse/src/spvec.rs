//! Sparse vectors.
//!
//! The paper considers two sparse-vector representations (§4.4.2):
//!
//! 1. a variable-sized array of sorted `(index, value)` tuples, and
//! 2. a bit vector marking the valid indices plus a constant-size (number of
//!    vertices) value array storing values only at valid indices.
//!
//! Option 2 wins across all algorithms and graphs — membership tests inside
//! the SpMV inner loop become a single bit probe, and the bit vector is small
//! enough to be shared and cached by all threads — so [`SparseVector`] is the
//! default used throughout the engine. [`SortedSparseVector`] implements
//! option 1 and exists so the Figure 7 "+bitvector" ablation can quantify the
//! difference.
//!
//! Both implement [`MessageVector`], the minimal interface the generalized
//! SpMV needs from its input vector.

use crate::bitvec::BitVec;
use crate::{ix, Index};

/// The read interface the generalized SpMV requires from its input vector.
pub trait MessageVector<T> {
    /// Logical length (number of vertices).
    fn len(&self) -> usize;
    /// `true` if no entries are set.
    fn is_empty(&self) -> bool {
        self.nnz() == 0
    }
    /// Number of set entries.
    fn nnz(&self) -> usize;
    /// Is index `i` present?
    fn contains(&self, i: Index) -> bool;
    /// Borrow the value at `i`, if present.
    fn get(&self, i: Index) -> Option<&T>;
}

/// Bit-vector backed sparse vector (the paper's option 2).
///
/// Values are stored in a dense array indexed by vertex id; validity is
/// tracked by a [`BitVec`]. `T: Default` supplies the placeholder stored at
/// unset slots.
#[derive(Clone, Debug)]
pub struct SparseVector<T> {
    valid: BitVec,
    values: Vec<T>,
    nnz: usize,
}

impl<T: Clone + Default> SparseVector<T> {
    /// Create an empty sparse vector of logical length `n`.
    pub fn new(n: usize) -> Self {
        SparseVector {
            valid: BitVec::new(n),
            values: vec![T::default(); n],
            nnz: 0,
        }
    }

    /// Create a vector with every index set to `value` (e.g. the all-ones
    /// vector used for degree calculation in the paper's Figure 1).
    pub fn full(n: usize, value: T) -> Self {
        let mut valid = BitVec::new(n);
        valid.set_all();
        SparseVector {
            valid,
            values: vec![value; n],
            nnz: n,
        }
    }
}

impl<T> SparseVector<T> {
    /// Set index `i` to `value`, overwriting any previous value.
    #[inline(always)]
    pub fn set(&mut self, i: Index, value: T) {
        if !self.valid.set(ix(i)) {
            self.nnz += 1;
        }
        self.values[ix(i)] = value;
    }

    /// Remove index `i` (the stored value slot keeps its last contents).
    pub fn unset(&mut self, i: Index) {
        if self.valid.get(ix(i)) {
            self.valid.clear(ix(i));
            self.nnz -= 1;
        }
    }

    /// Mutable access to the value at `i`, if present.
    #[inline(always)]
    pub fn get_mut(&mut self, i: Index) -> Option<&mut T> {
        if self.valid.get(ix(i)) {
            Some(&mut self.values[ix(i)])
        } else {
            None
        }
    }

    /// Insert-or-update: if `i` is present, `merge(existing, value)`,
    /// otherwise set it to `value`. This is exactly the `REDUCE` accumulation
    /// of Algorithm 1 line 7.
    #[inline(always)]
    pub fn merge(&mut self, i: Index, value: T, merge: impl FnOnce(&mut T, T)) {
        if self.valid.get(ix(i)) {
            merge(&mut self.values[ix(i)], value);
        } else {
            self.valid.set(ix(i));
            self.values[ix(i)] = value;
            self.nnz += 1;
        }
    }

    /// Iterate over `(index, &value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, &T)> + '_ {
        self.valid
            .iter_ones()
            .map(move |i| (i as Index, &self.values[i]))
    }

    /// Clear all entries without deallocating.
    pub fn clear(&mut self) {
        self.valid.clear_all();
        self.nnz = 0;
    }

    /// The validity bit vector (shared read-only across threads in the SpMV).
    pub fn valid_bits(&self) -> &BitVec {
        &self.valid
    }

    /// Raw dense value storage (values at unset indices are unspecified).
    pub fn raw_values(&self) -> &[T] {
        &self.values
    }

    /// Collect into a `Vec<(Index, T)>` (for tests / display).
    pub fn to_entries(&self) -> Vec<(Index, T)>
    where
        T: Clone,
    {
        self.iter().map(|(i, v)| (i, v.clone())).collect()
    }
}

impl<T> MessageVector<T> for SparseVector<T> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline(always)]
    fn nnz(&self) -> usize {
        self.nnz
    }

    #[inline(always)]
    fn contains(&self, i: Index) -> bool {
        self.valid.get(ix(i))
    }

    #[inline(always)]
    fn get(&self, i: Index) -> Option<&T> {
        if self.valid.get(ix(i)) {
            Some(&self.values[ix(i)])
        } else {
            None
        }
    }
}

/// Sorted `(index, value)` tuple sparse vector (the paper's option 1).
///
/// Membership tests are `O(log nnz)` binary searches; kept only for the
/// Figure 7 ablation that shows why the bit-vector representation wins.
#[derive(Clone, Debug, Default)]
pub struct SortedSparseVector<T> {
    len: usize,
    entries: Vec<(Index, T)>,
}

impl<T> SortedSparseVector<T> {
    /// Create an empty vector of logical length `n`.
    pub fn new(n: usize) -> Self {
        SortedSparseVector {
            len: n,
            entries: Vec::new(),
        }
    }

    /// Set index `i` to `value`, keeping entries sorted.
    pub fn set(&mut self, i: Index, value: T) {
        match self.entries.binary_search_by_key(&i, |e| e.0) {
            Ok(pos) => self.entries[pos].1 = value,
            Err(pos) => self.entries.insert(pos, (i, value)),
        }
    }

    /// Insert-or-update, mirroring [`SparseVector::merge`].
    pub fn merge(&mut self, i: Index, value: T, merge: impl FnOnce(&mut T, T)) {
        match self.entries.binary_search_by_key(&i, |e| e.0) {
            Ok(pos) => merge(&mut self.entries[pos].1, value),
            Err(pos) => self.entries.insert(pos, (i, value)),
        }
    }

    /// Iterate over `(index, &value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, &T)> + '_ {
        self.entries.iter().map(|(i, v)| (*i, v))
    }

    /// Clear all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<T> MessageVector<T> for SortedSparseVector<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn nnz(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn contains(&self, i: Index) -> bool {
        self.entries.binary_search_by_key(&i, |e| e.0).is_ok()
    }

    #[inline]
    fn get(&self, i: Index) -> Option<&T> {
        self.entries
            .binary_search_by_key(&i, |e| e.0)
            .ok()
            .map(|pos| &self.entries[pos].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vector_set_get() {
        let mut v: SparseVector<f32> = SparseVector::new(10);
        assert_eq!(v.nnz(), 0);
        assert!(v.is_empty());
        v.set(3, 1.5);
        v.set(7, 2.5);
        assert_eq!(v.nnz(), 2);
        assert!(v.contains(3));
        assert!(!v.contains(4));
        assert_eq!(v.get(7), Some(&2.5));
        assert_eq!(v.get(0), None);
        assert_eq!(MessageVector::len(&v), 10);
    }

    #[test]
    fn sparse_vector_overwrite_does_not_double_count() {
        let mut v: SparseVector<i32> = SparseVector::new(5);
        v.set(2, 1);
        v.set(2, 9);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(2), Some(&9));
    }

    #[test]
    fn sparse_vector_unset() {
        let mut v: SparseVector<i32> = SparseVector::new(5);
        v.set(2, 1);
        v.unset(2);
        assert_eq!(v.nnz(), 0);
        assert!(!v.contains(2));
        v.unset(2); // idempotent
        assert_eq!(v.nnz(), 0);
    }

    #[test]
    fn sparse_vector_merge_accumulates() {
        let mut v: SparseVector<i32> = SparseVector::new(5);
        v.merge(1, 10, |a, b| *a += b);
        v.merge(1, 5, |a, b| *a += b);
        v.merge(2, 7, |a, b| *a += b);
        assert_eq!(v.get(1), Some(&15));
        assert_eq!(v.get(2), Some(&7));
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn sparse_vector_full_and_clear() {
        let mut v = SparseVector::full(4, 1.0f64);
        assert_eq!(v.nnz(), 4);
        assert_eq!(v.iter().count(), 4);
        v.clear();
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.iter().count(), 0);
    }

    #[test]
    fn sparse_vector_iter_sorted() {
        let mut v: SparseVector<u32> = SparseVector::new(100);
        for i in [90u32, 5, 40, 7] {
            v.set(i, i * 2);
        }
        let entries = v.to_entries();
        assert_eq!(entries, vec![(5, 10), (7, 14), (40, 80), (90, 180)]);
    }

    #[test]
    fn sparse_vector_get_mut() {
        let mut v: SparseVector<i32> = SparseVector::new(5);
        v.set(1, 3);
        *v.get_mut(1).unwrap() = 4;
        assert_eq!(v.get(1), Some(&4));
        assert!(v.get_mut(0).is_none());
    }

    #[test]
    fn sorted_vector_basics() {
        let mut v: SortedSparseVector<i32> = SortedSparseVector::new(50);
        v.set(20, 1);
        v.set(10, 2);
        v.set(20, 3);
        assert_eq!(v.nnz(), 2);
        assert!(v.contains(10));
        assert!(!v.contains(11));
        assert_eq!(v.get(20), Some(&3));
        assert_eq!(MessageVector::len(&v), 50);
        let collected: Vec<(u32, i32)> = v.iter().map(|(i, x)| (i, *x)).collect();
        assert_eq!(collected, vec![(10, 2), (20, 3)]);
    }

    #[test]
    fn sorted_vector_merge() {
        let mut v: SortedSparseVector<i32> = SortedSparseVector::new(10);
        v.merge(3, 5, |a, b| *a += b);
        v.merge(3, 6, |a, b| *a += b);
        assert_eq!(v.get(3), Some(&11));
        v.clear();
        assert_eq!(v.nnz(), 0);
    }

    #[test]
    fn both_representations_agree() {
        let mut bv: SparseVector<i64> = SparseVector::new(64);
        let mut sv: SortedSparseVector<i64> = SortedSparseVector::new(64);
        for (i, val) in [(5u32, 1i64), (63, 2), (0, 3), (31, 4), (5, 9)] {
            bv.set(i, val);
            sv.set(i, val);
        }
        for i in 0..64u32 {
            assert_eq!(bv.contains(i), sv.contains(i), "index {i}");
            assert_eq!(bv.get(i), sv.get(i), "index {i}");
        }
        assert_eq!(bv.nnz(), sv.nnz());
    }
}
