//! Sparse vectors.
//!
//! The paper considers two sparse-vector representations (§4.4.2):
//!
//! 1. a variable-sized array of sorted `(index, value)` tuples, and
//! 2. a bit vector marking the valid indices plus a constant-size (number of
//!    vertices) value array storing values only at valid indices.
//!
//! Option 2 wins across all algorithms and graphs — membership tests inside
//! the SpMV inner loop become a single bit probe, and the bit vector is small
//! enough to be shared and cached by all threads — so [`SparseVector`] is the
//! default used throughout the engine. [`SortedSparseVector`] implements
//! option 1 and exists so the Figure 7 "+bitvector" ablation can quantify the
//! difference.
//!
//! Both implement [`MessageVector`], the minimal interface the generalized
//! SpMV needs from its input vector. A third representation, [`DenseVector`],
//! exists for the **pull** execution path (direction optimization): same
//! values-plus-bitmap layout as option 2, but consumed by O(1) indexed reads
//! inside the row-parallel pull kernel instead of driving column iteration —
//! see [`crate::spmv::gspmv_csr_pull_into`].
//!
//! # Concurrent writers
//!
//! Two write handles let multiple threads populate **one** [`SparseVector`]
//! in place, which is what keeps the superstep hot path allocation-free:
//!
//! * [`Sharded`] (from [`SparseVector::sharded`]) — for writers that own
//!   *disjoint index sets* whose boundaries are not word-aligned, e.g. the
//!   row partitions of the generalized SpMV. Validity bits are published
//!   with atomic `fetch_or` because neighbouring shards can share a 64-bit
//!   word at a range boundary.
//! * [`WordRangeWriter`] (inside [`SparseVector::fill_words_parallel`]) —
//!   for writers chunked on *word boundaries*, e.g. the SEND phase scanning
//!   the active-vertex bit vector. No atomics needed: chunks never share a
//!   word.

use crate::bitvec::BitVec;
use crate::parallel::{chunks, Executor};
use crate::{ix, Index};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const WORD_BITS: usize = 64;

/// The read interface the generalized SpMV requires from its input vector.
pub trait MessageVector<T> {
    /// Logical length (number of vertices).
    fn len(&self) -> usize;
    /// `true` if no entries are set.
    fn is_empty(&self) -> bool {
        self.nnz() == 0
    }
    /// Number of set entries.
    fn nnz(&self) -> usize;
    /// Is index `i` present?
    fn contains(&self, i: Index) -> bool;
    /// Borrow the value at `i`, if present.
    fn get(&self, i: Index) -> Option<&T>;
}

/// Bit-vector backed sparse vector (the paper's option 2).
///
/// Values are stored in a dense array indexed by vertex id; validity is
/// tracked by a [`BitVec`]. `T: Default` supplies the placeholder stored at
/// unset slots.
#[derive(Clone, Debug)]
pub struct SparseVector<T> {
    valid: BitVec,
    values: Vec<T>,
    nnz: usize,
    /// shard-check shadow state: one sticky-ownership claim per index
    /// (sharded merges) and one write-once claim per validity word
    /// (word-range fills). Reset at the start of each parallel region.
    #[cfg(feature = "shard-check")]
    row_claims: crate::shard_check::ClaimMap,
    #[cfg(feature = "shard-check")]
    word_claims: crate::shard_check::ClaimMap,
}

#[cfg(feature = "shard-check")]
fn claim_maps(n: usize) -> (crate::shard_check::ClaimMap, crate::shard_check::ClaimMap) {
    (
        crate::shard_check::ClaimMap::new(n, "SparseVector row"),
        crate::shard_check::ClaimMap::new(n.div_ceil(WORD_BITS), "SparseVector word"),
    )
}

impl<T: Clone + Default> SparseVector<T> {
    /// Create an empty sparse vector of logical length `n`.
    pub fn new(n: usize) -> Self {
        #[cfg(feature = "shard-check")]
        let (row_claims, word_claims) = claim_maps(n);
        SparseVector {
            valid: BitVec::new(n),
            values: vec![T::default(); n],
            nnz: 0,
            #[cfg(feature = "shard-check")]
            row_claims,
            #[cfg(feature = "shard-check")]
            word_claims,
        }
    }

    /// Create a vector with every index set to `value` (e.g. the all-ones
    /// vector used for degree calculation in the paper's Figure 1).
    pub fn full(n: usize, value: T) -> Self {
        let mut valid = BitVec::new(n);
        valid.set_all();
        #[cfg(feature = "shard-check")]
        let (row_claims, word_claims) = claim_maps(n);
        SparseVector {
            valid,
            values: vec![value; n],
            nnz: n,
            #[cfg(feature = "shard-check")]
            row_claims,
            #[cfg(feature = "shard-check")]
            word_claims,
        }
    }
}

impl<T> SparseVector<T> {
    /// Set index `i` to `value`, overwriting any previous value.
    #[inline(always)]
    pub fn set(&mut self, i: Index, value: T) {
        if !self.valid.set(ix(i)) {
            self.nnz += 1;
        }
        self.values[ix(i)] = value;
    }

    /// Remove index `i` (the stored value slot keeps its last contents).
    pub fn unset(&mut self, i: Index) {
        if self.valid.get(ix(i)) {
            self.valid.clear(ix(i));
            self.nnz -= 1;
        }
    }

    /// Mutable access to the value at `i`, if present.
    #[inline(always)]
    pub fn get_mut(&mut self, i: Index) -> Option<&mut T> {
        if self.valid.get(ix(i)) {
            Some(&mut self.values[ix(i)])
        } else {
            None
        }
    }

    /// Insert-or-update: if `i` is present, `merge(existing, value)`,
    /// otherwise set it to `value`. This is exactly the `REDUCE` accumulation
    /// of Algorithm 1 line 7.
    #[inline(always)]
    pub fn merge(&mut self, i: Index, value: T, merge: impl FnOnce(&mut T, T)) {
        if self.valid.get(ix(i)) {
            merge(&mut self.values[ix(i)], value);
        } else {
            self.valid.set(ix(i));
            self.values[ix(i)] = value;
            self.nnz += 1;
        }
    }

    /// Iterate over `(index, &value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, &T)> + '_ {
        self.valid
            .iter_ones()
            .map(move |i| (i as Index, &self.values[i]))
    }

    /// Clear all entries without deallocating.
    pub fn clear(&mut self) {
        self.valid.clear_all();
        self.nnz = 0;
    }

    /// The validity bit vector (shared read-only across threads in the SpMV).
    pub fn valid_bits(&self) -> &BitVec {
        &self.valid
    }

    /// Raw dense value storage (values at unset indices are unspecified).
    pub fn raw_values(&self) -> &[T] {
        &self.values
    }

    /// Collect into a `Vec<(Index, T)>` (for tests / display).
    pub fn to_entries(&self) -> Vec<(Index, T)>
    where
        T: Clone,
    {
        self.iter().map(|(i, v)| (i, v.clone())).collect()
    }

    /// Logical length (number of vertices); same as
    /// [`MessageVector::len`], provided inherently for convenience.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no entries are set.
    pub fn is_empty(&self) -> bool {
        self.nnz == 0
    }

    /// Number of set entries; same as [`MessageVector::nnz`], provided
    /// inherently for convenience.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Create a shared handle through which multiple threads may merge
    /// entries concurrently, provided they touch **disjoint index sets**
    /// (see [`Sharded::merge`]). Dropping the handle folds the threads'
    /// newly-set counts back into `nnz`.
    pub fn sharded(&mut self) -> Sharded<'_, T> {
        // A new handle starts a new parallel region: prior ownership lapses.
        #[cfg(feature = "shard-check")]
        self.row_claims.reset();
        Sharded {
            values: self.values.as_mut_ptr(),
            words: self.valid.words_mut().as_mut_ptr(),
            len: self.values.len(),
            added: AtomicUsize::new(0),
            nnz: &mut self.nnz as *mut usize,
            #[cfg(feature = "shard-check")]
            claims: &self.row_claims,
            _marker: PhantomData,
        }
    }

    /// Populate the vector in parallel from **word-aligned chunks** of its
    /// index space. `f` is invoked once per chunk with a [`WordRangeWriter`]
    /// restricted to that chunk's word range `[word_start, word_end)`; since
    /// the executor hands each chunk to exactly one lane and no two chunks
    /// share a 64-bit validity word, all writes are plain (non-atomic) and
    /// race-free. `nnz` is updated once at the end.
    ///
    /// The index space is over-split into several word chunks per lane and
    /// dynamically scheduled, so a frontier clustered in one contiguous id
    /// range (e.g. a BFS wavefront on a locality-ordered graph) does not
    /// serialize on a single lane.
    ///
    /// This is the SEND-phase primitive: the engine scans the active-vertex
    /// bit vector word range and inserts one message per sending vertex,
    /// with no allocation and no locks.
    pub fn fill_words_parallel<F>(&mut self, executor: &Executor, f: F)
    where
        T: Send,
        F: Fn(&mut WordRangeWriter<'_, T>) + Sync,
    {
        let nwords = self.valid.words().len();
        if nwords == 0 {
            return;
        }
        let added = AtomicUsize::new(0);
        #[cfg(feature = "shard-check")]
        self.word_claims.reset();
        #[cfg(feature = "shard-check")]
        let word_claims = &self.word_claims;
        let parts = RawParts {
            values: self.values.as_mut_ptr(),
            words: self.valid.words_mut().as_mut_ptr(),
            len: self.values.len(),
        };
        let ch = chunks(nwords, executor.nthreads() * 4);
        executor.for_each_dynamic(ch.count(), |chunk_idx| {
            let (word_start, word_end) = ch.bounds(chunk_idx);
            // Each word chunk is handed out exactly once: claim its words
            // write-once before constructing the writer that stores to them.
            #[cfg(feature = "shard-check")]
            for w in word_start..word_end {
                word_claims.claim_exclusive(w);
            }
            let mut writer = WordRangeWriter {
                parts,
                word_start,
                word_end,
                added: 0,
                _marker: PhantomData,
            };
            f(&mut writer);
            added.fetch_add(writer.added, Ordering::Relaxed);
        });
        self.nnz += added.load(Ordering::Relaxed);
    }
}

/// Raw storage pointers of a [`SparseVector`], shared across the lanes of a
/// parallel fill. Disjointness of the written regions is enforced by the
/// writer types built on top.
struct RawParts<T> {
    values: *mut T,
    words: *mut u64,
    len: usize,
}

impl<T> Clone for RawParts<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for RawParts<T> {}

// SAFETY: the pointers come from an exclusive (&mut) borrow of the vector
// that outlives the parallel region, and the writer types only touch
// disjoint regions from different threads.
unsafe impl<T: Send> Send for RawParts<T> {}
unsafe impl<T: Send> Sync for RawParts<T> {}

/// Concurrent merge handle for writers owning disjoint index sets (e.g. the
/// disjoint row ranges of SpMV partitions). Created by
/// [`SparseVector::sharded`].
///
/// Because two shards may share a validity *word* (range boundaries are not
/// word-aligned), validity bits are read and published atomically; values
/// need no atomics since indices are disjoint.
pub struct Sharded<'a, T> {
    values: *mut T,
    words: *mut u64,
    len: usize,
    added: AtomicUsize,
    nnz: *mut usize,
    /// Sticky per-row ownership shadow: the first lane to merge into a row
    /// owns it for the lifetime of the handle (see [`crate::shard_check`]).
    #[cfg(feature = "shard-check")]
    claims: &'a crate::shard_check::ClaimMap,
    _marker: PhantomData<&'a mut SparseVector<T>>,
}

// SAFETY: see `RawParts`; additionally `added` is atomic and `nnz` is only
// dereferenced in Drop, after all threads are done (the borrow rules force
// the parallel region to end before the handle can be dropped by its owner).
unsafe impl<T: Send> Send for Sharded<'_, T> {}
unsafe impl<T: Send> Sync for Sharded<'_, T> {}

impl<T> Sharded<'_, T> {
    /// Insert-or-update entry `i`, mirroring [`SparseVector::merge`].
    /// `newly_set` is the caller's thread-local counter of entries this
    /// thread set for the first time; pass its final value to
    /// [`Sharded::commit`] once the thread's work is done.
    ///
    /// # Safety
    /// For the whole time the handle is shared, index `i` must be written by
    /// **at most one** thread (disjoint index ownership). `i` must be within
    /// bounds.
    #[inline(always)]
    pub unsafe fn merge(
        &self,
        i: Index,
        value: T,
        newly_set: &mut usize,
        merge: impl FnOnce(&mut T, T),
    ) {
        let i = ix(i);
        debug_assert!(i < self.len, "index {i} out of range {}", self.len);
        // Claim before the raw write so a disjointness violation panics
        // before any undefined behaviour can occur.
        #[cfg(feature = "shard-check")]
        self.claims.claim_owner(i);
        let mask = 1u64 << (i % WORD_BITS);
        // Neighbouring shards may concurrently update other bits of this
        // word, so all word accesses go through an atomic view.
        let word = &*(self.words.add(i / WORD_BITS) as *const AtomicU64);
        if word.load(Ordering::Relaxed) & mask != 0 {
            merge(&mut *self.values.add(i), value);
        } else {
            *self.values.add(i) = value;
            word.fetch_or(mask, Ordering::Relaxed);
            *newly_set += 1;
        }
    }

    /// Fold a thread's local newly-set count into the vector's `nnz`
    /// (applied when the handle is dropped).
    pub fn commit(&self, newly_set: usize) {
        self.added.fetch_add(newly_set, Ordering::Relaxed);
    }
}

impl<T> Drop for Sharded<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the exclusive borrow of the vector is still alive and all
        // worker threads have finished (the executor joins before returning).
        unsafe { *self.nnz += self.added.load(Ordering::Relaxed) };
    }
}

/// Write handle restricted to one word-aligned chunk of a [`SparseVector`],
/// handed out by [`SparseVector::fill_words_parallel`]. All writes are plain
/// stores; the containment check in [`WordRangeWriter::set`] is what makes
/// the shared-nothing claim sound, so it is a hard assert.
pub struct WordRangeWriter<'a, T> {
    parts: RawParts<T>,
    word_start: usize,
    word_end: usize,
    added: usize,
    _marker: PhantomData<&'a mut SparseVector<T>>,
}

impl<T> WordRangeWriter<'_, T> {
    /// The word range `[start, end)` this writer may touch.
    pub fn word_range(&self) -> (usize, usize) {
        (self.word_start, self.word_end)
    }

    /// The index range `[start, end)` this writer may set.
    pub fn index_range(&self) -> (usize, usize) {
        (
            self.word_start * WORD_BITS,
            (self.word_end * WORD_BITS).min(self.parts.len),
        )
    }

    /// Set index `i` to `value`, overwriting any previous value (same
    /// semantics as [`SparseVector::set`]).
    ///
    /// # Panics
    /// Panics if `i` falls outside this writer's word range.
    #[inline(always)]
    pub fn set(&mut self, i: Index, value: T) {
        let i = ix(i);
        let w = i / WORD_BITS;
        assert!(
            w >= self.word_start && w < self.word_end && i < self.parts.len,
            "index {i} outside this writer's word range [{}, {})",
            self.word_start,
            self.word_end
        );
        // SAFETY: the assert above confines `i` to this chunk's words, and
        // chunks are disjoint across threads.
        unsafe {
            *self.parts.values.add(i) = value;
            let word = self.parts.words.add(w);
            let mask = 1u64 << (i % WORD_BITS);
            if *word & mask == 0 {
                *word |= mask;
                self.added += 1;
            }
        }
    }
}

impl<T> MessageVector<T> for SparseVector<T> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline(always)]
    fn nnz(&self) -> usize {
        self.nnz
    }

    #[inline(always)]
    fn contains(&self, i: Index) -> bool {
        self.valid.get(ix(i))
    }

    #[inline(always)]
    fn get(&self, i: Index) -> Option<&T> {
        if self.valid.get(ix(i)) {
            Some(&self.values[ix(i)])
        } else {
            None
        }
    }
}

/// Dense message vector for the **pull** execution path: a constant-size
/// value array plus a validity bitmap, exactly like [`SparseVector`], but
/// consumed by *indexed reads* rather than by driving iteration.
///
/// The distinction is semantic, not representational. The push kernel
/// ([`crate::spmv::gspmv_into`]) walks the non-empty columns of a DCSC and
/// probes the input vector per column — any [`MessageVector`] works,
/// including the `O(log nnz)` [`SortedSparseVector`]. The pull kernel
/// ([`crate::spmv::gspmv_csr_pull_into`]) instead iterates destination rows
/// and looks up **every** source index it encounters; it is only correct to
/// run when those lookups are O(1) bit-probe + array-read. `DenseVector` is
/// the type that encodes that guarantee: the pull kernel accepts it and
/// nothing else.
///
/// Like the engine's other per-superstep buffers, a `DenseVector` is
/// allocated once (in the engine `Workspace`) and recycled across
/// supersteps: [`DenseVector::clear`] resets the bitmap without touching the
/// value array.
#[derive(Clone, Debug)]
pub struct DenseVector<T> {
    inner: SparseVector<T>,
}

impl<T: Clone + Default> DenseVector<T> {
    /// Create an empty dense vector of logical length `n`.
    pub fn new(n: usize) -> Self {
        DenseVector {
            inner: SparseVector::new(n),
        }
    }
}

impl<T> DenseVector<T> {
    /// Set index `i` to `value`, overwriting any previous value.
    #[inline(always)]
    pub fn set(&mut self, i: Index, value: T) {
        self.inner.set(i, value);
    }

    /// Clear all entries without deallocating (value slots keep their last
    /// contents; only the validity bitmap is reset).
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Logical length (number of vertices).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if no entries are set.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of set entries.
    pub fn nnz(&self) -> usize {
        self.inner.nnz()
    }

    /// The validity bitmap (the pull kernel probes this per source index).
    #[inline(always)]
    pub fn valid_bits(&self) -> &BitVec {
        self.inner.valid_bits()
    }

    /// Raw dense value storage (values at unset indices are unspecified; the
    /// pull kernel reads a slot only after its validity bit tested set).
    #[inline(always)]
    pub fn raw_values(&self) -> &[T] {
        self.inner.raw_values()
    }

    /// Iterate over `(index, &value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, &T)> + '_ {
        self.inner.iter()
    }

    /// Collect into a `Vec<(Index, T)>` (for tests / display).
    pub fn to_entries(&self) -> Vec<(Index, T)>
    where
        T: Clone,
    {
        self.inner.to_entries()
    }

    /// Populate the vector in parallel from word-aligned chunks of its index
    /// space — identical contract to [`SparseVector::fill_words_parallel`].
    /// This is how the engine's SEND phase builds the pull-mode message
    /// vector without locks or allocation.
    pub fn fill_words_parallel<F>(&mut self, executor: &Executor, f: F)
    where
        T: Send,
        F: Fn(&mut WordRangeWriter<'_, T>) + Sync,
    {
        self.inner.fill_words_parallel(executor, f)
    }
}

impl<T> MessageVector<T> for DenseVector<T> {
    #[inline(always)]
    fn len(&self) -> usize {
        MessageVector::len(&self.inner)
    }

    #[inline(always)]
    fn nnz(&self) -> usize {
        MessageVector::nnz(&self.inner)
    }

    #[inline(always)]
    fn contains(&self, i: Index) -> bool {
        self.inner.contains(i)
    }

    #[inline(always)]
    fn get(&self, i: Index) -> Option<&T> {
        self.inner.get(i)
    }
}

/// Sorted `(index, value)` tuple sparse vector (the paper's option 1).
///
/// Membership tests are `O(log nnz)` binary searches; kept only for the
/// Figure 7 ablation that shows why the bit-vector representation wins.
///
/// There is deliberately no `Default` impl: a defaulted vector would have
/// logical length 0 yet silently accept out-of-range writes, making
/// [`MessageVector::len`] lie about the domain. Construct with
/// [`SortedSparseVector::new`]; writes are bounds-checked in debug builds,
/// matching [`SparseVector`].
#[derive(Clone, Debug)]
pub struct SortedSparseVector<T> {
    len: usize,
    entries: Vec<(Index, T)>,
}

impl<T> SortedSparseVector<T> {
    /// Create an empty vector of logical length `n`.
    pub fn new(n: usize) -> Self {
        SortedSparseVector {
            len: n,
            entries: Vec::new(),
        }
    }

    /// Set index `i` to `value`, keeping entries sorted.
    pub fn set(&mut self, i: Index, value: T) {
        debug_assert!(ix(i) < self.len, "index {i} out of range {}", self.len);
        match self.entries.binary_search_by_key(&i, |e| e.0) {
            Ok(pos) => self.entries[pos].1 = value,
            Err(pos) => self.entries.insert(pos, (i, value)),
        }
    }

    /// Insert-or-update, mirroring [`SparseVector::merge`].
    pub fn merge(&mut self, i: Index, value: T, merge: impl FnOnce(&mut T, T)) {
        debug_assert!(ix(i) < self.len, "index {i} out of range {}", self.len);
        match self.entries.binary_search_by_key(&i, |e| e.0) {
            Ok(pos) => merge(&mut self.entries[pos].1, value),
            Err(pos) => self.entries.insert(pos, (i, value)),
        }
    }

    /// Iterate over `(index, &value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, &T)> + '_ {
        self.entries.iter().map(|(i, v)| (*i, v))
    }

    /// Clear all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<T> MessageVector<T> for SortedSparseVector<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn nnz(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn contains(&self, i: Index) -> bool {
        self.entries.binary_search_by_key(&i, |e| e.0).is_ok()
    }

    #[inline]
    fn get(&self, i: Index) -> Option<&T> {
        self.entries
            .binary_search_by_key(&i, |e| e.0)
            .ok()
            .map(|pos| &self.entries[pos].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vector_set_get() {
        let mut v: SparseVector<f32> = SparseVector::new(10);
        assert_eq!(v.nnz(), 0);
        assert!(v.is_empty());
        v.set(3, 1.5);
        v.set(7, 2.5);
        assert_eq!(v.nnz(), 2);
        assert!(v.contains(3));
        assert!(!v.contains(4));
        assert_eq!(v.get(7), Some(&2.5));
        assert_eq!(v.get(0), None);
        assert_eq!(MessageVector::len(&v), 10);
    }

    #[test]
    fn sparse_vector_overwrite_does_not_double_count() {
        let mut v: SparseVector<i32> = SparseVector::new(5);
        v.set(2, 1);
        v.set(2, 9);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(2), Some(&9));
    }

    #[test]
    fn sparse_vector_unset() {
        let mut v: SparseVector<i32> = SparseVector::new(5);
        v.set(2, 1);
        v.unset(2);
        assert_eq!(v.nnz(), 0);
        assert!(!v.contains(2));
        v.unset(2); // idempotent
        assert_eq!(v.nnz(), 0);
    }

    #[test]
    fn sparse_vector_merge_accumulates() {
        let mut v: SparseVector<i32> = SparseVector::new(5);
        v.merge(1, 10, |a, b| *a += b);
        v.merge(1, 5, |a, b| *a += b);
        v.merge(2, 7, |a, b| *a += b);
        assert_eq!(v.get(1), Some(&15));
        assert_eq!(v.get(2), Some(&7));
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn sparse_vector_full_and_clear() {
        let mut v = SparseVector::full(4, 1.0f64);
        assert_eq!(v.nnz(), 4);
        assert_eq!(v.iter().count(), 4);
        v.clear();
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.iter().count(), 0);
    }

    #[test]
    fn sparse_vector_iter_sorted() {
        let mut v: SparseVector<u32> = SparseVector::new(100);
        for i in [90u32, 5, 40, 7] {
            v.set(i, i * 2);
        }
        let entries = v.to_entries();
        assert_eq!(entries, vec![(5, 10), (7, 14), (40, 80), (90, 180)]);
    }

    #[test]
    fn sparse_vector_get_mut() {
        let mut v: SparseVector<i32> = SparseVector::new(5);
        v.set(1, 3);
        *v.get_mut(1).unwrap() = 4;
        assert_eq!(v.get(1), Some(&4));
        assert!(v.get_mut(0).is_none());
    }

    #[test]
    fn sorted_vector_basics() {
        let mut v: SortedSparseVector<i32> = SortedSparseVector::new(50);
        v.set(20, 1);
        v.set(10, 2);
        v.set(20, 3);
        assert_eq!(v.nnz(), 2);
        assert!(v.contains(10));
        assert!(!v.contains(11));
        assert_eq!(v.get(20), Some(&3));
        assert_eq!(MessageVector::len(&v), 50);
        let collected: Vec<(u32, i32)> = v.iter().map(|(i, x)| (i, *x)).collect();
        assert_eq!(collected, vec![(10, 2), (20, 3)]);
    }

    #[test]
    fn sorted_vector_merge() {
        let mut v: SortedSparseVector<i32> = SortedSparseVector::new(10);
        v.merge(3, 5, |a, b| *a += b);
        v.merge(3, 6, |a, b| *a += b);
        assert_eq!(v.get(3), Some(&11));
        v.clear();
        assert_eq!(v.nnz(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn sorted_vector_out_of_bounds_set_panics_in_debug() {
        let mut v: SortedSparseVector<i32> = SortedSparseVector::new(5);
        v.set(5, 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn sorted_vector_out_of_bounds_merge_panics_in_debug() {
        let mut v: SortedSparseVector<i32> = SortedSparseVector::new(3);
        v.merge(7, 1, |a, b| *a += b);
    }

    #[test]
    fn sharded_merge_matches_sequential_merge() {
        // Disjoint index ranges with a boundary inside one 64-bit word.
        let mut expected: SparseVector<u64> = SparseVector::new(200);
        for i in 0..200u32 {
            expected.merge(i, i as u64, |a, b| *a += b);
            if i % 3 == 0 {
                expected.merge(i, 1, |a, b| *a += b);
            }
        }
        let mut v: SparseVector<u64> = SparseVector::new(200);
        {
            let shards = v.sharded();
            let ranges = [(0u32, 70u32), (70, 130), (130, 200)];
            std::thread::scope(|scope| {
                for (lo, hi) in ranges {
                    let shards = &shards;
                    scope.spawn(move || {
                        let mut newly = 0usize;
                        for i in lo..hi {
                            // SAFETY: ranges are disjoint.
                            unsafe { shards.merge(i, i as u64, &mut newly, |a, b| *a += b) };
                            if i % 3 == 0 {
                                // SAFETY: same disjoint range as above; re-merging
                                // an index this lane owns is explicitly allowed.
                                unsafe { shards.merge(i, 1, &mut newly, |a, b| *a += b) };
                            }
                        }
                        shards.commit(newly);
                    });
                }
            });
        }
        assert_eq!(v.nnz(), expected.nnz());
        assert_eq!(v.to_entries(), expected.to_entries());
    }

    /// The detector's acceptance test: two lanes deliberately merge into the
    /// **same** row of one `Sharded` handle — the exact bug class the unsafe
    /// disjoint-write protocol cannot tolerate — and shard-check must turn
    /// it into a panic on the second lane instead of silent UB.
    #[test]
    #[cfg(feature = "shard-check")]
    fn shard_check_catches_overlapping_sharded_claims() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Barrier;

        let mut v: SparseVector<u64> = SparseVector::new(64);
        let shards = v.sharded();
        let barrier = Barrier::new(2);
        let caught = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|lane| {
                    let shards = &shards;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        catch_unwind(AssertUnwindSafe(|| {
                            let mut newly = 0;
                            // Both lanes target row 7: a protocol violation.
                            // SAFETY: deliberately violates disjointness; the
                            // claim map panics before the racing write.
                            unsafe { shards.merge(7, lane as u64, &mut newly, |a, b| *a += b) };
                            shards.commit(newly);
                        }))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| panic!("join failed")))
                .collect::<Vec<_>>()
        });
        let panics = caught.iter().filter(|r| r.is_err()).count();
        assert_eq!(panics, 1, "exactly the second claimant must panic");
        let msg = caught
            .into_iter()
            .find_map(|r| r.err())
            .and_then(|p| p.downcast::<String>().ok())
            .unwrap_or_else(|| panic!("panic payload must be a String"));
        assert!(
            msg.contains("shard-check"),
            "diagnostic names the detector: {msg}"
        );
        assert!(
            msg.contains("SparseVector row[7]"),
            "diagnostic names the row: {msg}"
        );
        assert!(msg.contains("lane"), "diagnostic names the lanes: {msg}");
    }

    #[test]
    fn fill_words_parallel_matches_sequential_set() {
        let ex = Executor::new(4);
        let mut par: SparseVector<u32> = SparseVector::new(1000);
        par.fill_words_parallel(&ex, |w| {
            let (lo, hi) = w.index_range();
            for i in (lo..hi).filter(|i| i % 7 == 0) {
                w.set(i as Index, i as u32 * 2);
            }
        });
        let mut seq: SparseVector<u32> = SparseVector::new(1000);
        for i in (0..1000).step_by(7) {
            seq.set(i as Index, i as u32 * 2);
        }
        assert_eq!(par.nnz(), seq.nnz());
        assert_eq!(par.to_entries(), seq.to_entries());
    }

    #[test]
    fn fill_words_parallel_accumulates_nnz_across_calls() {
        let ex = Executor::sequential();
        let mut v: SparseVector<u8> = SparseVector::new(128);
        v.fill_words_parallel(&ex, |w| {
            let (lo, hi) = w.index_range();
            for i in lo..hi.min(10) {
                w.set(i as Index, 1);
            }
        });
        assert_eq!(v.nnz(), 10);
        // Second fill over the same indices must not double-count.
        v.fill_words_parallel(&ex, |w| {
            let (lo, hi) = w.index_range();
            for i in lo..hi.min(10) {
                w.set(i as Index, 2);
            }
        });
        assert_eq!(v.nnz(), 10);
        assert_eq!(v.get(0), Some(&2));
    }

    #[test]
    #[should_panic(expected = "word range")]
    fn word_range_writer_rejects_out_of_chunk_index() {
        let mut v: SparseVector<u8> = SparseVector::new(256);
        // Sequential executor → a single chunk covering everything, so build
        // a writer over a sub-range via a 4-lane executor and write outside.
        let ex = Executor::new(4);
        v.fill_words_parallel(&ex, |w| {
            let (lo, _) = w.word_range();
            if lo > 0 {
                w.set(0, 1); // outside this chunk
            } else {
                w.set(255, 1); // outside chunk 0 (4 words split across lanes)
            }
        });
    }

    #[test]
    fn both_representations_agree() {
        let mut bv: SparseVector<i64> = SparseVector::new(64);
        let mut sv: SortedSparseVector<i64> = SortedSparseVector::new(64);
        for (i, val) in [(5u32, 1i64), (63, 2), (0, 3), (31, 4), (5, 9)] {
            bv.set(i, val);
            sv.set(i, val);
        }
        for i in 0..64u32 {
            assert_eq!(bv.contains(i), sv.contains(i), "index {i}");
            assert_eq!(bv.get(i), sv.get(i), "index {i}");
        }
        assert_eq!(bv.nnz(), sv.nnz());
    }
}
