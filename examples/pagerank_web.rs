//! Rank a synthetic web/social graph with PageRank and compare GraphMat's
//! engine against the hand-optimized native baseline (the Table 3
//! experiment, in miniature). Uses the session API: the topology is built
//! once and the GraphMat run goes through `pagerank_on`.
//!
//! ```text
//! cargo run --release --example pagerank_web
//! ```

use graphmat::baselines::native;
use graphmat::io::rmat::{self, RmatConfig};
use graphmat::prelude::*;
use std::time::Instant;

fn main() -> Result<(), GraphMatError> {
    // A power-law "web graph" from the Graph500 RMAT generator with the
    // paper's PageRank parameters (A=0.57, B=C=0.19).
    let scale = 15;
    let edges = rmat::generate(&RmatConfig::graph500(scale).with_seed(2024));
    println!(
        "generated RMAT scale {scale}: {} vertices, {} edges",
        edges.num_vertices(),
        edges.num_edges()
    );

    let iterations = 10;
    let config = PageRankConfig {
        iterations,
        ..Default::default()
    };

    // GraphMat engine: build the resident matrix once, then query it.
    let session = Session::with_defaults()?;
    let t0 = Instant::now();
    let topo = session.build_graph(&edges).in_edges(false).finish()?;
    let build_wall = t0.elapsed();
    let t1 = Instant::now();
    let graphmat_run = pagerank_on(&session, &topo, &config)?;
    let graphmat_wall = t1.elapsed();

    // Native, hand-optimized CSR implementation.
    let native_run = native::pagerank(&edges, 0.15, iterations, 0);

    println!(
        "GraphMat : {:.3} ms/iteration (engine time; {:.3} ms wall + {:.3} ms one-off graph build)",
        graphmat_run.stats.total_time.as_secs_f64() * 1000.0 / iterations as f64,
        graphmat_wall.as_secs_f64() * 1000.0,
        build_wall.as_secs_f64() * 1000.0
    );
    println!(
        "Native   : {:.3} ms/iteration",
        native_run.elapsed.as_secs_f64() * 1000.0 / iterations as f64
    );

    // Same results?
    let max_diff = graphmat_run
        .values
        .iter()
        .zip(native_run.values.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |GraphMat - native| rank difference: {max_diff:.2e}");

    // Show the top-ranked vertices.
    let mut order: Vec<usize> = (0..graphmat_run.values.len()).collect();
    order.sort_by(|&a, &b| {
        graphmat_run.values[b]
            .partial_cmp(&graphmat_run.values[a])
            .unwrap()
    });
    println!("top 5 vertices by rank:");
    for &v in order.iter().take(5) {
        println!(
            "  vertex {v:>6}  rank {:>8.3}  in-degree {}",
            graphmat_run.values[v],
            topo.in_degrees()[v]
        );
    }
    Ok(())
}
