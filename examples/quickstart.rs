//! Quickstart: write your own vertex program and run it through a `Session`.
//!
//! This example implements the paper's running example — single-source
//! shortest paths (Figure 3 / appendix listing) — directly against the
//! `GraphProgram` trait, then runs it through the three-layer API:
//!
//! 1. `Session::with_defaults()` — one persistent worker pool for the whole
//!    process;
//! 2. `session.build_graph(..).finish()` — an immutable `Arc<Topology>`
//!    built once and shared by every query (and every thread) after it;
//! 3. `session.run(..).seed_with(..).execute()` — a per-query run with its
//!    own `VertexState`, returning a typed `RunOutcome` (or a
//!    `GraphMatError` for bad input, instead of a panic).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use graphmat::prelude::*;

/// The SSSP vertex program from the paper's appendix, translated to Rust.
struct Sssp;

impl GraphProgram for Sssp {
    /// Distance is stored as a single-precision floating point number.
    type VertexProp = f32;
    type Message = f32;
    type Reduced = f32;
    /// Edges carry `f32` lengths (use `()` for unweighted programs).
    type Edge = f32;

    /// Perform path traversals only via out-edges.
    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    /// Send message: read the vertex property and generate the message.
    fn send_message(&self, _v: VertexId, distance: &f32) -> Option<f32> {
        Some(*distance)
    }

    /// Process message: add the edge weight to the incoming distance.
    fn process_message(&self, message: &f32, edge_weight: &f32, _dst: &f32) -> f32 {
        message + edge_weight
    }

    /// Reduce: keep the minimum candidate distance.
    fn reduce(&self, acc: &mut f32, value: f32) {
        if value < *acc {
            *acc = value;
        }
    }

    /// Apply: keep the smaller of the old and new distance.
    fn apply(&self, reduced: &f32, distance: &mut f32) {
        if *reduced < *distance {
            *distance = *reduced;
        }
    }
}

fn main() -> Result<(), GraphMatError> {
    // The weighted graph of the paper's Figure 3: vertices A..E = 0..4.
    let edges = EdgeList::from_tuples(
        5,
        vec![
            (0, 1, 1.0), // A -> B, weight 1
            (0, 2, 3.0), // A -> C, weight 3
            (0, 3, 2.0), // A -> D, weight 2
            (1, 2, 1.0), // B -> C, weight 1
            (2, 3, 2.0), // C -> D, weight 2
            (3, 4, 2.0), // D -> E, weight 2
            (4, 0, 4.0), // E -> A, weight 4
        ],
    );

    // One session per process: it owns the worker pool every run shares.
    let session = Session::with_defaults()?;

    // Build the topology ONCE. The Arc<Topology> is immutable and Sync —
    // every query from here on (from any thread) reads the same matrices.
    let topology = session.build_graph(&edges).in_edges(false).finish()?;

    // Run the program: infinity everywhere, source A = 0 seeded active.
    let outcome = session
        .run(&topology, Sssp)
        .init_all(f32::MAX)
        .seed_with(0, 0.0)
        .max_iterations(50)
        .execute()?;

    println!("SSSP from vertex A on the paper's Figure 3 graph");
    println!(
        "  converged: {} after {} supersteps",
        outcome.converged, outcome.stats.iterations
    );
    println!(
        "  time in generalized SpMV: {:.1}% of the run",
        outcome.stats.spmv_fraction() * 100.0
    );
    for (name, v) in ["A", "B", "C", "D", "E"].iter().zip(0usize..) {
        println!("  distance({name}) = {}", outcome.values[v]);
    }

    // The same algorithm is available pre-packaged as a session driver:
    let packaged = sssp_on(&session, &topology, 0)?;
    assert_eq!(packaged.values, outcome.values);
    println!("packaged sssp_on() agrees with the hand-written program ✓");

    // Misuse returns a typed error instead of panicking — a serving layer
    // turns this into an error response, not a crashed worker.
    let err = sssp_on(&session, &topology, 999).unwrap_err();
    println!("out-of-range query rejected: {err}");

    // A second query over the SAME topology: nothing is rebuilt or cloned.
    let from_b = sssp_on(&session, &topology, 1)?;
    println!(
        "distances from B (same matrix, new per-run state): {:?}",
        from_b.values
    );
    Ok(())
}
