//! Quickstart: write your own vertex program and run it.
//!
//! This example implements the paper's running example — single-source
//! shortest paths (Figure 3 / appendix listing) — directly against the
//! `GraphProgram` trait, then runs it on the exact 5-vertex graph drawn in
//! the paper and prints the distances the paper reports (A=0, B=1, C=2, D=2,
//! E=4).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use graphmat::prelude::*;

/// The SSSP vertex program from the paper's appendix, translated to Rust.
struct Sssp;

impl GraphProgram for Sssp {
    /// Distance is stored as a single-precision floating point number.
    type VertexProp = f32;
    type Message = f32;
    type Reduced = f32;
    /// Edges carry `f32` lengths (use `()` for unweighted programs).
    type Edge = f32;

    /// Perform path traversals only via out-edges.
    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Out
    }

    /// Send message: read the vertex property and generate the message.
    fn send_message(&self, _v: VertexId, distance: &f32) -> Option<f32> {
        Some(*distance)
    }

    /// Process message: add the edge weight to the incoming distance.
    fn process_message(&self, message: &f32, edge_weight: &f32, _dst: &f32) -> f32 {
        message + edge_weight
    }

    /// Reduce: keep the minimum candidate distance.
    fn reduce(&self, acc: &mut f32, value: f32) {
        if value < *acc {
            *acc = value;
        }
    }

    /// Apply: keep the smaller of the old and new distance.
    fn apply(&self, reduced: &f32, distance: &mut f32) {
        if *reduced < *distance {
            *distance = *reduced;
        }
    }
}

fn main() {
    // The weighted graph of the paper's Figure 3: vertices A..E = 0..4.
    let edges = EdgeList::from_tuples(
        5,
        vec![
            (0, 1, 1.0), // A -> B, weight 1
            (0, 2, 3.0), // A -> C, weight 3
            (0, 3, 2.0), // A -> D, weight 2
            (1, 2, 1.0), // B -> C, weight 1
            (2, 3, 2.0), // C -> D, weight 2
            (3, 4, 2.0), // D -> E, weight 2
            (4, 0, 4.0), // E -> A, weight 4
        ],
    );

    // Build the graph: the engine stores Gᵀ in partitioned DCSC form.
    let mut graph: Graph<f32> = Graph::from_edge_list(&edges, GraphBuildOptions::default());

    // Set all distances to infinity, source (vertex A = 0) to 0, mark it active.
    graph.set_all_properties(f32::MAX);
    graph.set_property(0, 0.0);
    graph.set_active(0);

    // Run until convergence (no vertex changes state).
    let result = run_graph_program(&Sssp, &mut graph, &RunOptions::default());

    println!("SSSP from vertex A on the paper's Figure 3 graph");
    println!(
        "  converged: {} after {} supersteps",
        result.converged, result.stats.iterations
    );
    println!(
        "  time in generalized SpMV: {:.1}% of the run",
        result.stats.spmv_fraction() * 100.0
    );
    for (name, v) in ["A", "B", "C", "D", "E"].iter().zip(0u32..) {
        println!("  distance({name}) = {}", graph.property(v));
    }

    // The same algorithm is available pre-packaged:
    let packaged = sssp(&edges, &SsspConfig::from_source(0), &RunOptions::default());
    assert_eq!(packaged.values, graph.properties());
    println!("packaged sssp() agrees with the hand-written program ✓");
}
