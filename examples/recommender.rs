//! Train a recommender by collaborative filtering on a synthetic
//! Netflix-like ratings graph (the paper's Figure 4d workload), then use the
//! learned latent factors to produce recommendations for one user.
//!
//! Collaborative filtering scatters along **both** edge directions, so the
//! shared topology keeps its in-edge matrix (the graph builder's default).
//!
//! ```text
//! cargo run --release --example recommender
//! ```

use graphmat::io::bipartite;
use graphmat::prelude::*;

fn main() -> Result<(), GraphMatError> {
    // A bipartite ratings graph: 5 000 users × 400 items, 120 000 ratings,
    // with the skewed item popularity of real ratings data.
    let ratings = bipartite::generate(&BipartiteConfig {
        num_users: 5_000,
        num_items: 400,
        num_ratings: 120_000,
        ..Default::default()
    });
    println!(
        "ratings graph: {} users, {} items, {} ratings",
        ratings.num_users,
        ratings.num_items,
        ratings.edges.num_edges()
    );

    // One resident bipartite matrix; both the untrained snapshot and the
    // training run query it through the session.
    let session = Session::with_defaults()?;
    let topo = session.build_graph(&ratings.edges).finish()?;

    // Factorise with gradient descent (the paper's GD formulation, eqs. 4–6).
    let config = CfConfig {
        latent_dims: 16,
        iterations: 25,
        ..Default::default()
    };
    let untrained = collaborative_filtering_on(
        &session,
        &topo,
        &CfConfig {
            iterations: 0,
            ..config
        },
    )?;
    let trained = collaborative_filtering_on(&session, &topo, &config)?;

    println!(
        "RMSE before training: {:.4}",
        rmse(&ratings.edges, &untrained.values)
    );
    println!(
        "RMSE after  training: {:.4}   ({} GD iterations, {:.1} ms/iteration)",
        rmse(&ratings.edges, &trained.values),
        trained.stats.iterations,
        trained.stats.total_time.as_secs_f64() * 1000.0 / trained.stats.iterations.max(1) as f64
    );

    // Recommend unseen items for one user: highest predicted rating wins.
    let user = 42u32;
    let seen: Vec<u32> = ratings
        .edges
        .edges()
        .iter()
        .filter(|&&(u, _, _)| u == user)
        .map(|&(_, item, _)| item)
        .collect();
    let mut predictions: Vec<(u32, f64)> = (ratings.num_users
        ..ratings.num_users + ratings.num_items)
        .filter(|item| !seen.contains(item))
        .map(|item| {
            let score: f64 = trained.values[user as usize]
                .iter()
                .zip(trained.values[item as usize].iter())
                .map(|(a, b)| a * b)
                .sum();
            (item, score)
        })
        .collect();
    predictions.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!(
        "user {user} has rated {} items; top 5 recommendations:",
        seen.len()
    );
    for (item, score) in predictions.iter().take(5) {
        println!(
            "  item {:>5}  predicted rating {score:.2}",
            item - ratings.num_users
        );
    }
    Ok(())
}
