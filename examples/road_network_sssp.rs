//! Shortest paths on a road network — the high-diameter workload where the
//! paper credits GraphMat's low per-iteration overhead for its 10× win over
//! GraphLab and CombBLAS (Figure 4e, Flickr / USA-road discussion).
//!
//! The example generates a grid road network (the USA-road stand-in), runs
//! SSSP under GraphMat (through a `Session` over a shared topology — the
//! serving shape, where repeated queries never rebuild the matrix) and
//! under two comparator engines, and prints the runtime plus the number of
//! supersteps/rounds each needed.
//!
//! ```text
//! cargo run --release --example road_network_sssp
//! ```

use graphmat::baselines::{vertexpull, worklist};
use graphmat::io::grid;
use graphmat::prelude::*;

fn main() -> Result<(), GraphMatError> {
    // A 300×300 road grid with a few missing segments and random lengths.
    let config = GridConfig {
        removal_fraction: 0.06,
        num_shortcuts: 16,
        ..GridConfig::square(300)
    };
    let edges = grid::generate(&config);
    println!(
        "road network: {} intersections, {} road segments",
        edges.num_vertices(),
        edges.num_edges()
    );

    let source = config.vertex(0, 0);

    // GraphMat: matrix built once, SSSP queried through the session.
    let session = Session::with_defaults()?;
    let topo = session.build_graph(&edges).in_edges(false).finish()?;
    let gm = sssp_on(&session, &topo, source)?;
    println!(
        "GraphMat      : {:>8.1} ms, {:>4} supersteps",
        gm.stats.total_time.as_secs_f64() * 1000.0,
        gm.stats.iterations
    );

    // GraphLab-style gather-apply-scatter engine.
    let gl = vertexpull::sssp(&edges, source, 0);
    println!(
        "GraphLab-like : {:>8.1} ms, {:>4} rounds",
        gl.elapsed.as_secs_f64() * 1000.0,
        gl.iterations
    );

    // Galois-style asynchronous worklist engine.
    let ga = worklist::sssp(&edges, source, 0);
    println!(
        "Galois-like   : {:>8.1} ms, {:>4} rounds (asynchronous)",
        ga.elapsed.as_secs_f64() * 1000.0,
        ga.iterations
    );

    // All three agree on the distances.
    let mut max_diff = 0.0f32;
    let mut reachable = 0usize;
    for ((a, b), c) in gm.values.iter().zip(gl.values.iter()).zip(ga.values.iter()) {
        if *a < f32::MAX {
            reachable += 1;
            max_diff = max_diff.max((a - b).abs()).max((a - c).abs());
        }
    }
    println!("{reachable} intersections reachable; max distance disagreement {max_diff:.1e}");

    // The resident matrix answers more queries with no rebuild: shortest
    // paths from the opposite corner reuse the same Arc<Topology>.
    let far_corner = config.vertex(299, 299);
    let back = sssp_on(&session, &topo, far_corner)?;
    let far = gm
        .values
        .iter()
        .enumerate()
        .filter(|(_, d)| **d < f32::MAX)
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "farthest reachable intersection from (0,0): id {} at total length {:.0}",
        far.0, far.1
    );
    println!(
        "second query (from the far corner, same resident matrix): {} supersteps",
        back.stats.iterations
    );
    Ok(())
}
