//! Unweighted quickstart: the zero-cost `Edge = ()` fast path, on the
//! session API.
//!
//! BFS, connected components, degree and triangle counting never read edge
//! values, so they run on `EdgeList<()>` / `Topology<()>`: the DCSC
//! adjacency matrices store **no edge value bytes at all** (a `Vec<()>` is
//! free), which removes 4 bytes/edge of memory traffic compared to carrying
//! `f32` weights the algorithm would ignore. This example
//!
//! 1. writes a hand-rolled unweighted vertex program against the
//!    `GraphProgram` trait with `type Edge = ()` and runs it through the
//!    `Session` run builder;
//! 2. runs the packaged `bfs_on()` against the same shared topology and
//!    checks they agree;
//! 3. prints the matrix memory footprint next to the footprint the same
//!    topology would cost with `f32` weights.
//!
//! ```text
//! cargo run --release --example unweighted_bfs
//! ```

use graphmat::io::rmat::{self, RmatConfig};
use graphmat::prelude::*;

/// Hop-count BFS with `type Edge = ()` — the unweighted fast path.
struct HopBfs;

impl GraphProgram for HopBfs {
    type VertexProp = u32;
    type Message = u32;
    type Reduced = u32;
    /// No edge values: the adjacency matrices store indices only.
    type Edge = ();

    fn send_message(&self, _v: VertexId, dist: &u32) -> Option<u32> {
        Some(*dist)
    }

    fn process_message(&self, msg: &u32, _edge: &(), _dst: &u32) -> u32 {
        msg.saturating_add(1)
    }

    fn reduce(&self, acc: &mut u32, value: u32) {
        if value < *acc {
            *acc = value;
        }
    }

    fn apply(&self, reduced: &u32, dist: &mut u32) {
        if *reduced < *dist {
            *dist = *reduced;
        }
    }
}

fn main() -> Result<(), GraphMatError> {
    // An unweighted social-style graph. `topology()` strips the generator's
    // unit weights, leaving an EdgeList<()>. BFS treats edges as
    // undirected, so symmetrize before building — session drivers never
    // preprocess behind your back.
    let weighted = rmat::generate(&RmatConfig::graph500(14).with_seed(99));
    let edges = weighted.symmetrized().topology();
    println!(
        "graph: {} vertices, {} undirected edges (unweighted)",
        edges.num_vertices(),
        edges.num_edges()
    );

    let session = Session::with_defaults()?;
    let topo = session.build_graph(&edges).in_edges(false).finish()?;

    // Hand-rolled program through the run builder.
    let outcome = session
        .run(&topo, HopBfs)
        .init_all(u32::MAX)
        .seed_with(0, 0)
        .execute()?;
    println!(
        "hand-rolled BFS: {} supersteps, matrix footprint {} bytes (zero value bytes)",
        outcome.stats.iterations, outcome.stats.matrix_bytes
    );

    // Packaged bfs_on() — same shared topology, same answers.
    let packaged = bfs_on(&session, &topo, 0)?;
    assert_eq!(packaged.values, outcome.values);
    println!("packaged bfs_on() agrees with the hand-written program ✓");

    // What the same topology costs with f32 weights the algorithm ignores:
    let weighted_topo = session
        .build_graph(&edges.with_weights(|_, _| 1.0f32))
        .in_edges(false)
        .finish()?;
    let unweighted_bytes = topo.matrix_bytes();
    let weighted_bytes = weighted_topo.matrix_bytes();
    println!(
        "matrix memory: unweighted {} bytes vs weighted {} bytes — {:.1}% saved ({} bytes/edge)",
        unweighted_bytes,
        weighted_bytes,
        100.0 * (weighted_bytes - unweighted_bytes) as f64 / weighted_bytes as f64,
        (weighted_bytes - unweighted_bytes) / edges.num_edges().max(1)
    );

    let reached = packaged.values.iter().filter(|&&d| d != u32::MAX).count();
    println!("{reached} vertices reachable from the root");
    Ok(())
}
