//! Unweighted quickstart: the zero-cost `Edge = ()` fast path.
//!
//! BFS, connected components, degree and triangle counting never read edge
//! values, so they run on `EdgeList<()>` / `Graph<_, ()>`: the DCSC
//! adjacency matrices store **no edge value bytes at all** (a `Vec<()>` is
//! free), which removes 4 bytes/edge of memory traffic compared to carrying
//! `f32` weights the algorithm would ignore. This example
//!
//! 1. writes a hand-rolled unweighted vertex program against the
//!    `GraphProgram` trait with `type Edge = ()`;
//! 2. runs the packaged `bfs()` on the same graph and checks they agree;
//! 3. prints the matrix memory footprint next to the footprint the same
//!    topology would cost with `f32` weights.
//!
//! ```text
//! cargo run --release --example unweighted_bfs
//! ```

use graphmat::io::rmat::{self, RmatConfig};
use graphmat::prelude::*;

/// Hop-count BFS with `type Edge = ()` — the unweighted fast path.
struct HopBfs;

impl GraphProgram for HopBfs {
    type VertexProp = u32;
    type Message = u32;
    type Reduced = u32;
    /// No edge values: the adjacency matrices store indices only.
    type Edge = ();

    fn send_message(&self, _v: VertexId, dist: &u32) -> Option<u32> {
        Some(*dist)
    }

    fn process_message(&self, msg: &u32, _edge: &(), _dst: &u32) -> u32 {
        msg.saturating_add(1)
    }

    fn reduce(&self, acc: &mut u32, value: u32) {
        if value < *acc {
            *acc = value;
        }
    }

    fn apply(&self, reduced: &u32, dist: &mut u32) {
        if *reduced < *dist {
            *dist = *reduced;
        }
    }
}

fn main() {
    // An unweighted social-style graph. `topology()` strips the generator's
    // unit weights, leaving an EdgeList<()>.
    let weighted = rmat::generate(&RmatConfig::graph500(14).with_seed(99));
    let edges = weighted.symmetrized().topology();
    println!(
        "graph: {} vertices, {} undirected edges (unweighted)",
        edges.num_vertices(),
        edges.num_edges()
    );

    // Hand-rolled program on Graph<u32, ()>.
    let mut graph: Graph<u32, ()> =
        Graph::from_edge_list(&edges, GraphBuildOptions::default().with_in_edges(false));
    graph.set_all_properties(u32::MAX);
    graph.set_property(0, 0);
    graph.set_active(0);
    let result = run_graph_program(&HopBfs, &mut graph, &RunOptions::default());
    println!(
        "hand-rolled BFS: {} supersteps, matrix footprint {} bytes (zero value bytes)",
        result.stats.iterations, result.stats.matrix_bytes
    );

    // Packaged bfs() — same EdgeList<()>, same answers.
    let packaged = bfs(
        &edges,
        &BfsConfig {
            root: 0,
            symmetrize: false, // already symmetrized above
            ..Default::default()
        },
        &RunOptions::default(),
    );
    assert_eq!(packaged.values, graph.properties());
    println!("packaged bfs() agrees with the hand-written program ✓");

    // What the same topology costs with f32 weights the algorithm ignores:
    let weighted_graph: Graph<u32, f32> = Graph::from_edge_list(
        &edges.with_weights(|_, _| 1.0f32),
        GraphBuildOptions::default().with_in_edges(false),
    );
    let unweighted_bytes = graph.matrix_bytes();
    let weighted_bytes = weighted_graph.matrix_bytes();
    println!(
        "matrix memory: unweighted {} bytes vs weighted {} bytes — {:.1}% saved ({} bytes/edge)",
        unweighted_bytes,
        weighted_bytes,
        100.0 * (weighted_bytes - unweighted_bytes) as f64 / weighted_bytes as f64,
        (weighted_bytes - unweighted_bytes) / edges.num_edges().max(1)
    );

    let reached = packaged.values.iter().filter(|&&d| d != u32::MAX).count();
    println!("{reached} vertices reachable from the root");
}
