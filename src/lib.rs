//! # GraphMat-RS
//!
//! A Rust reproduction of *GraphMat: High performance graph analytics made
//! productive* (Sundaram et al., VLDB 2015).
//!
//! GraphMat exposes a **vertex-programming** frontend — you write
//! `send_message` / `process_message` / `reduce` / `apply` callbacks — and
//! executes it as **generalized sparse matrix–sparse vector multiplication**
//! over the transposed adjacency matrix, stored in DCSC format and processed
//! by a partition-parallel backend.
//!
//! This umbrella crate re-exports the whole workspace so that examples,
//! integration tests and downstream users can depend on a single crate.
//!
//! ```
//! use graphmat::prelude::*;
//!
//! // Build a tiny directed graph and run PageRank through the GraphMat engine.
//! let edges = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (0, 2, 1.0)]);
//! let ranks = pagerank(&edges, &PageRankConfig::default(), &RunOptions::default());
//! assert_eq!(ranks.values.len(), 3);
//! // vertex 2 has two in-links and ends up with the highest rank
//! assert!(ranks.values[2] > ranks.values[0]);
//! ```

pub use graphmat_algorithms as algorithms;
pub use graphmat_baselines as baselines;
pub use graphmat_core as core;
pub use graphmat_io as io;
pub use graphmat_perf as perf;
pub use graphmat_sparse as sparse;

/// Commonly used types for writing and running vertex programs.
pub mod prelude {
    pub use graphmat_algorithms::bfs::{bfs, BfsConfig};
    pub use graphmat_algorithms::collaborative_filtering::{
        collaborative_filtering, rmse, CfConfig,
    };
    pub use graphmat_algorithms::connected_components::{
        component_count, connected_components, CcConfig,
    };
    pub use graphmat_algorithms::degree::{in_degrees, out_degrees};
    pub use graphmat_algorithms::delta_pagerank::{delta_pagerank, DeltaPageRankConfig};
    pub use graphmat_algorithms::pagerank::{pagerank, PageRankConfig};
    pub use graphmat_algorithms::sssp::{sssp, SsspConfig};
    pub use graphmat_algorithms::triangle_count::{
        total_triangles, triangle_count, TriangleCountConfig,
    };
    pub use graphmat_algorithms::AlgorithmOutput;
    pub use graphmat_core::{
        run_graph_program, ActivityPolicy, DispatchMode, EdgeDirection, Graph, GraphBuildOptions,
        GraphProgram, RunOptions, RunResult, RunStats, VectorKind, VertexId,
    };
    pub use graphmat_io::bipartite::BipartiteConfig;
    pub use graphmat_io::edgelist::EdgeList;
    pub use graphmat_io::grid::GridConfig;
    pub use graphmat_io::rmat::RmatConfig;
    pub use graphmat_sparse::spvec::SparseVector;
}
