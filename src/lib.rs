//! # GraphMat-RS
//!
//! A Rust reproduction of *GraphMat: High performance graph analytics made
//! productive* (Sundaram et al., VLDB 2015).
//!
//! GraphMat exposes a **vertex-programming** frontend — you write
//! `send_message` / `process_message` / `reduce` / `apply` callbacks — and
//! executes it as **generalized sparse matrix–sparse vector multiplication**
//! over the transposed adjacency matrix, stored in DCSC format and processed
//! by a partition-parallel backend.
//!
//! ## The session API: one resident graph, many concurrent queries
//!
//! The public API is organised around the separation that makes a serving
//! architecture possible (build the matrix once, answer many queries):
//!
//! * [`core::session::Session`] — owns one persistent worker pool and the
//!   fluent builders; `Sync`, so share it across threads;
//! * [`core::topology::Topology`]`<E>` — the immutable matrices + degrees,
//!   wrapped in an `Arc` and shared by every run without cloning;
//! * [`core::state::VertexState`]`<V>` — the per-run mutable half
//!   (properties + active set), fresh per query or pooled across runs.
//!
//! ```
//! use graphmat::prelude::*;
//!
//! let session = Session::with_defaults()?;
//! let edges = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (0, 2, 1.0)]);
//! // Build once; Arc<Topology> is shared by every run that follows.
//! let topo = session.build_graph(&edges).in_edges(false).finish()?;
//!
//! // Packaged algorithms take &Session + &Topology…
//! let ranks = pagerank_on(&session, &topo, &PageRankConfig::default())?;
//! assert!(ranks.values[2] > ranks.values[0]);
//!
//! // …and hand-written programs go through the run builder (seed the
//! // source, cap iterations, execute into a fresh per-run state).
//! let sssp = sssp_on(&session, &topo, 0)?;
//! assert_eq!(sssp.values[1], 1.0);
//! # Ok::<(), GraphMatError>(())
//! ```
//!
//! Runs issued from different threads against the same `Arc<Topology>`
//! through one `Session` execute concurrently — the matrix is never cloned,
//! and every fallible path (bad vertex id, empty edge list, missing in-edge
//! matrix, zero threads) returns a typed [`core::error::GraphMatError`].
//!
//! ## Migrating from the fused `Graph` API
//!
//! The pre-session API (`Graph<V, E>` + `run_graph_program`) still works —
//! `Graph` is now a thin facade over a `Topology` + one `VertexState` — but
//! new code should use the builders:
//!
//! | old | new |
//! |---|---|
//! | `Graph::from_edge_list(&edges, opts)` | `session.build_graph(&edges).partitions(16).finish()?` |
//! | `graph.set_all_properties(v)` | `.init_all(v)` on the run builder |
//! | `graph.set_property(s, 0.0); graph.set_active(s)` | `.seed_with(s, 0.0)` |
//! | `graph.set_all_active()` | `.activate_all()` |
//! | `run_graph_program(&prog, &mut graph, &opts)` | `session.run(&topo, prog)…execute()?` |
//! | `bfs(&edges, &cfg, &opts)` (rebuilds the matrix) | `bfs_on(&session, &topo, root)?` |
//! | clone the `Graph` per concurrent run | share one `Arc<Topology>` |
//!
//! See [`core`] for the full migration table and
//! `examples/quickstart.rs` for a complete session-based program.
//!
//! ## Direction optimization (PR-4)
//!
//! Sessions run **direction-optimized** by default
//! (`VectorKind::Auto`): each superstep executes either the paper's sparse
//! *push* SpMV (column-wise over the DCSC) or the dense *pull* SpMV
//! (row-parallel over a CSR mirror), chosen by Beamer's frontier-density
//! rule — pull when the frontier's out-edges exceed `unexplored / α`.
//! Results are bit-for-bit identical across backends; the per-superstep
//! choice is recorded in `SuperstepStats::backend`. Force a backend with
//! `.vector(…)`, tune α with `.pull_alpha(…)`, and skip the mirrors'
//! ~2× matrix memory with `.pull_enabled(false)` on the graph builder.
//!
//! ## Edge-type genericity (PR-1)
//!
//! Like the original C++ (which templatizes the edge type alongside the
//! three vertex-program types), the whole stack is **generic over the edge
//! value type**: a vertex program declares
//! [`core::program::GraphProgram::Edge`], topologies are `Topology<E>` and
//! edge lists are `EdgeList<E>` (`f32` by default). `Edge = ()` is the
//! **zero-cost unweighted fast path**: `Vec<()>` stores nothing, so the
//! DCSC matrices carry no edge value bytes at all — 4 bytes/edge less
//! memory traffic for a bandwidth-bound SpMV. BFS, connected components,
//! degree and triangle counting all accept `EdgeList<()>` (build one with
//! `EdgeList::from_pairs` or strip weights with `EdgeList::topology()`).
//! See [`core::program`] for the PR-1 migration guide from the
//! hardcoded-`f32` API.
//!
//! ## Serving (PR-6)
//!
//! The [`server`] crate turns the session architecture into a long-running
//! query server: `graphmat-serve` loads one graph at startup and answers
//! length-prefix-framed TCP requests (PageRank / BFS / SSSP / components /
//! degrees) from a worker pool with a bounded admission queue, per-request
//! deadlines, pooled per-worker `VertexState`s (steady-state serving
//! allocates nothing per query) and a `STATS` observability endpoint;
//! `loadgen` drives it and emits the `BENCH_serving` JSON series. See the
//! README's *Serving* section.
//!
//! This umbrella crate re-exports the whole workspace so that examples,
//! integration tests and downstream users can depend on a single crate.

pub use graphmat_algorithms as algorithms;
pub use graphmat_baselines as baselines;
pub use graphmat_core as core;
pub use graphmat_delta as delta;
pub use graphmat_io as io;
pub use graphmat_perf as perf;
pub use graphmat_server as server;
pub use graphmat_sparse as sparse;

/// Commonly used types for writing and running vertex programs.
pub mod prelude {
    pub use graphmat_algorithms::bfs::{bfs, bfs_on, bfs_view, BfsConfig};
    pub use graphmat_algorithms::collaborative_filtering::{
        collaborative_filtering, collaborative_filtering_on, rmse, CfConfig,
    };
    pub use graphmat_algorithms::connected_components::{
        component_count, connected_components, connected_components_on, connected_components_view,
        CcConfig,
    };
    pub use graphmat_algorithms::degree::{in_degrees, in_degrees_on, out_degrees, out_degrees_on};
    pub use graphmat_algorithms::delta_pagerank::{
        delta_pagerank, delta_pagerank_into, delta_pagerank_on, delta_pagerank_view,
        DeltaPageRankConfig, StreamingPageRank,
    };
    pub use graphmat_algorithms::pagerank::{pagerank, pagerank_on, pagerank_view, PageRankConfig};
    pub use graphmat_algorithms::sssp::{sssp, sssp_on, SsspConfig};
    pub use graphmat_algorithms::triangle_count::{
        total_triangles, triangle_count, triangle_count_on, TriangleCountConfig,
    };
    pub use graphmat_algorithms::AlgorithmOutput;
    pub use graphmat_core::{
        run_graph_program, run_program, run_program_view, ActivityPolicy, Backend, DispatchMode,
        EdgeDirection, Graph, GraphBuildOptions, GraphMatError, GraphProgram, GraphSnapshot,
        GraphStore, GraphView, RunOptions, RunOutcome, RunResult, RunStats, Session,
        SessionOptions, StoreOptions, StoreStats, SuperstepStats, Topology, VectorKind, VertexId,
        VertexState, DEFAULT_PULL_ALPHA,
    };
    pub use graphmat_delta::{DeltaBatch, DeltaError, UpdateOp};
    pub use graphmat_io::bipartite::BipartiteConfig;
    pub use graphmat_io::edgelist::{EdgeList, EdgeWeight};
    pub use graphmat_io::grid::GridConfig;
    pub use graphmat_io::rmat::RmatConfig;
    pub use graphmat_sparse::spvec::SparseVector;
}
