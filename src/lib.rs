//! # GraphMat-RS
//!
//! A Rust reproduction of *GraphMat: High performance graph analytics made
//! productive* (Sundaram et al., VLDB 2015).
//!
//! GraphMat exposes a **vertex-programming** frontend — you write
//! `send_message` / `process_message` / `reduce` / `apply` callbacks — and
//! executes it as **generalized sparse matrix–sparse vector multiplication**
//! over the transposed adjacency matrix, stored in DCSC format and processed
//! by a partition-parallel backend.
//!
//! Like the original C++ (which templatizes the edge type alongside the
//! three vertex-program types), the whole stack is **generic over the edge
//! value type**:
//!
//! * a vertex program declares [`core::program::GraphProgram::Edge`] and
//!   receives `&Self::Edge` in `process_message`;
//! * graphs are `Graph<VertexProp, Edge>` and edge lists are `EdgeList<E>`
//!   (`f32` by default);
//! * `Edge = ()` is the **zero-cost unweighted fast path**: `Vec<()>` stores
//!   nothing, so the DCSC matrices carry no edge value bytes at all — 4
//!   bytes/edge less memory traffic for a bandwidth-bound SpMV. BFS,
//!   connected components, degree and triangle counting all accept
//!   `EdgeList<()>` (build one with `EdgeList::from_pairs` or strip weights
//!   with `EdgeList::topology()`).
//!
//! ## Weighted quickstart
//!
//! ```
//! use graphmat::prelude::*;
//!
//! // Build a tiny directed graph and run PageRank through the GraphMat engine.
//! let edges = EdgeList::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (0, 2, 1.0)]);
//! let ranks = pagerank(&edges, &PageRankConfig::default(), &RunOptions::default());
//! assert_eq!(ranks.values.len(), 3);
//! // vertex 2 has two in-links and ends up with the highest rank
//! assert!(ranks.values[2] > ranks.values[0]);
//! ```
//!
//! ## Unweighted quickstart
//!
//! ```
//! use graphmat::prelude::*;
//!
//! // from_pairs builds an EdgeList<()> — no weight bytes anywhere.
//! let edges = EdgeList::from_pairs(4, vec![(0, 1), (1, 2), (2, 3)]);
//! let out = bfs(&edges, &BfsConfig::from_root(0), &RunOptions::default());
//! assert_eq!(out.values, vec![0, 1, 2, 3]);
//! // the run reports the matrix footprint: pure index bytes, zero value bytes
//! assert!(out.stats.matrix_bytes > 0);
//! ```
//!
//! ## Migrating from the hardcoded-`f32` edge API
//!
//! Older versions fixed the edge type to `f32`. The port is mechanical:
//!
//! 1. add `type Edge = f32;` (or `()`, `u32`, …) to each `GraphProgram`
//!    impl;
//! 2. change `process_message(&self, msg, edge: f32, dst)` to take
//!    `edge: &Self::Edge`;
//! 3. programs that never read `edge` should declare `type Edge = ()` and be
//!    fed an `EdgeList<()>` to drop the weight storage entirely;
//! 4. algorithms that consume weights generically (SSSP, collaborative
//!    filtering) bound their edge type with
//!    [`io::edgelist::EdgeWeight`], which any scalar-like edge type
//!    implements (`()` reads as weight `1`).
//!
//! See [`core::program`] for the full trait documentation and
//! `examples/unweighted_bfs.rs` for a complete unweighted program.
//!
//! This umbrella crate re-exports the whole workspace so that examples,
//! integration tests and downstream users can depend on a single crate.

pub use graphmat_algorithms as algorithms;
pub use graphmat_baselines as baselines;
pub use graphmat_core as core;
pub use graphmat_io as io;
pub use graphmat_perf as perf;
pub use graphmat_sparse as sparse;

/// Commonly used types for writing and running vertex programs.
pub mod prelude {
    pub use graphmat_algorithms::bfs::{bfs, BfsConfig};
    pub use graphmat_algorithms::collaborative_filtering::{
        collaborative_filtering, rmse, CfConfig,
    };
    pub use graphmat_algorithms::connected_components::{
        component_count, connected_components, CcConfig,
    };
    pub use graphmat_algorithms::degree::{in_degrees, out_degrees};
    pub use graphmat_algorithms::delta_pagerank::{delta_pagerank, DeltaPageRankConfig};
    pub use graphmat_algorithms::pagerank::{pagerank, PageRankConfig};
    pub use graphmat_algorithms::sssp::{sssp, SsspConfig};
    pub use graphmat_algorithms::triangle_count::{
        total_triangles, triangle_count, TriangleCountConfig,
    };
    pub use graphmat_algorithms::AlgorithmOutput;
    pub use graphmat_core::{
        run_graph_program, ActivityPolicy, DispatchMode, EdgeDirection, Graph, GraphBuildOptions,
        GraphProgram, RunOptions, RunResult, RunStats, VectorKind, VertexId,
    };
    pub use graphmat_io::bipartite::BipartiteConfig;
    pub use graphmat_io::edgelist::{EdgeList, EdgeWeight};
    pub use graphmat_io::grid::GridConfig;
    pub use graphmat_io::rmat::RmatConfig;
    pub use graphmat_sparse::spvec::SparseVector;
}
