//! Integration tests: every engine in the workspace computes the same
//! answers on the same graphs. This is the correctness backbone of the
//! benchmark comparisons — a baseline that produced different results would
//! make the Figure 4 timings meaningless.

use graphmat::baselines::{comb, native, vertexpull, worklist};
use graphmat::prelude::*;
use graphmat_io::bipartite::{self, BipartiteConfig};
use graphmat_io::datasets::{load, DatasetId, DatasetScale};
use graphmat_io::grid::{self, GridConfig};

fn social_graph() -> EdgeList {
    load(DatasetId::FacebookLike, DatasetScale::Tiny)
}

fn road_graph() -> EdgeList {
    grid::generate(&GridConfig {
        removal_fraction: 0.05,
        ..GridConfig::square(40)
    })
}

#[test]
fn pagerank_all_engines_agree() {
    let edges = social_graph();
    let iterations = 8;
    let gm = pagerank(
        &edges,
        &PageRankConfig {
            iterations,
            ..Default::default()
        },
        &RunOptions::default(),
    );
    let nat = native::pagerank(&edges, 0.15, iterations, 0);
    let cb = comb::pagerank(&edges, 0.15, iterations, 0);
    let wl = worklist::pagerank(&edges, 0.15, iterations, 0);

    for v in 0..edges.num_vertices() as usize {
        // Engines that APPLY only to message receivers leave source vertices
        // at their initial rank; compare the vertices that actually update.
        if edges.in_degrees()[v] == 0 {
            continue;
        }
        let reference = nat.values[v];
        assert!(
            (gm.values[v] - reference).abs() < 1e-9,
            "graphmat vertex {v}"
        );
        assert!((cb.values[v] - reference).abs() < 1e-9, "comb vertex {v}");
        assert!(
            (wl.values[v] - reference).abs() < 1e-9,
            "worklist vertex {v}"
        );
    }

    let gl = vertexpull::pagerank(&edges, 0.15, iterations, 0);
    for v in 0..edges.num_vertices() as usize {
        if edges.in_degrees()[v] == 0 {
            continue;
        }
        assert!(
            (gl.values[v] - nat.values[v]).abs() < 1e-9,
            "gas vertex {v}"
        );
    }
}

#[test]
fn bfs_all_engines_agree() {
    let edges = social_graph();
    let root = 3;
    let gm = bfs(&edges, &BfsConfig::from_root(root), &RunOptions::default());
    let nat = native::bfs(&edges, root, 0);
    let cb = comb::bfs(&edges, root, 0);
    let gl = vertexpull::bfs(&edges, root, 0);
    let wl = worklist::bfs(&edges, root, 0);
    assert_eq!(gm.values, nat.values);
    assert_eq!(cb.values, nat.values);
    assert_eq!(gl.values, nat.values);
    assert_eq!(wl.values, nat.values);
}

#[test]
fn sssp_all_engines_agree_on_road_network() {
    let edges = road_graph();
    let source = 0;
    let gm = sssp(
        &edges,
        &SsspConfig::from_source(source),
        &RunOptions::default(),
    );
    let nat = native::sssp(&edges, source, 0);
    let cb = comb::sssp(&edges, source, 0);
    let gl = vertexpull::sssp(&edges, source, 0);
    let wl = worklist::sssp(&edges, source, 0);
    for v in 0..edges.num_vertices() as usize {
        let reference = nat.values[v];
        for (name, value) in [
            ("graphmat", gm.values[v]),
            ("comb", cb.values[v]),
            ("gas", gl.values[v]),
            ("worklist", wl.values[v]),
        ] {
            if reference == f32::MAX {
                assert_eq!(value, f32::MAX, "{name} vertex {v} should be unreachable");
            } else {
                assert!((value - reference).abs() < 1e-3, "{name} vertex {v}");
            }
        }
    }
}

#[test]
fn triangle_counts_agree_across_engines() {
    let edges = load(DatasetId::RmatTriangle, DatasetScale::Tiny);
    let gm = triangle_count(
        &edges,
        &TriangleCountConfig::default(),
        &RunOptions::default(),
    );
    let expected = native::triangle_count(&edges, 0).values.iter().sum::<u64>();
    assert_eq!(total_triangles(&gm), expected);
    assert_eq!(
        comb::triangle_count(&edges, 0).values.iter().sum::<u64>(),
        expected
    );
    assert_eq!(
        vertexpull::triangle_count(&edges, 0)
            .values
            .iter()
            .sum::<u64>(),
        expected
    );
    assert_eq!(
        worklist::triangle_count(&edges, 0)
            .values
            .iter()
            .sum::<u64>(),
        expected
    );
    assert!(expected > 0, "the RMAT TC graph should contain triangles");
}

#[test]
fn collaborative_filtering_engines_agree() {
    let ratings = bipartite::generate(&BipartiteConfig {
        num_users: 80,
        num_items: 16,
        num_ratings: 800,
        ..Default::default()
    });
    let cfg = CfConfig {
        latent_dims: 6,
        iterations: 5,
        ..Default::default()
    };
    let gm = collaborative_filtering(&ratings, &cfg, &RunOptions::default());
    let nat = native::collaborative_filtering(&ratings, 6, cfg.lambda, cfg.gamma, 5, cfg.seed, 0);
    let cb = comb::collaborative_filtering(&ratings, 6, cfg.lambda, cfg.gamma, 5, cfg.seed, 0);
    let gl =
        vertexpull::collaborative_filtering(&ratings, 6, cfg.lambda, cfg.gamma, 5, cfg.seed, 0);
    for v in 0..ratings.edges.num_vertices() as usize {
        for k in 0..6 {
            let reference = nat.values[v][k];
            assert!(
                (gm.values[v][k] - reference).abs() < 1e-9,
                "graphmat {v},{k}"
            );
            assert!((cb.values[v][k] - reference).abs() < 1e-9, "comb {v},{k}");
            assert!((gl.values[v][k] - reference).abs() < 1e-9, "gas {v},{k}");
        }
    }
}

#[test]
fn unweighted_bfs_agrees_across_every_baseline() {
    // The generic-edge API end to end: a zero-byte EdgeList<()> flows through
    // GraphMat AND all four comparator engines, and everyone agrees with the
    // weighted run on the same topology.
    let weighted = social_graph();
    let edges: EdgeList<()> = weighted.topology();
    let root = 3;
    let reference = bfs(
        &weighted,
        &BfsConfig::from_root(root),
        &RunOptions::default(),
    );

    let gm = bfs(&edges, &BfsConfig::from_root(root), &RunOptions::default());
    let nat = native::bfs(&edges, root, 0);
    let cb = comb::bfs(&edges, root, 0);
    let gl = vertexpull::bfs(&edges, root, 0);
    let wl = worklist::bfs(&edges, root, 0);
    assert_eq!(gm.values, reference.values);
    assert_eq!(nat.values, reference.values);
    assert_eq!(cb.values, reference.values);
    assert_eq!(gl.values, reference.values);
    assert_eq!(wl.values, reference.values);
}

#[test]
fn graphmat_is_deterministic_across_thread_counts() {
    let edges = social_graph();
    let run = |threads: usize| {
        (
            pagerank(
                &edges,
                &PageRankConfig {
                    iterations: 5,
                    ..Default::default()
                },
                &RunOptions::default().with_threads(threads),
            )
            .values,
            sssp(
                &edges,
                &SsspConfig::from_source(1),
                &RunOptions::default().with_threads(threads),
            )
            .values,
        )
    };
    let (pr1, ss1) = run(1);
    let (pr4, ss4) = run(4);
    assert_eq!(ss1, ss4);
    for (a, b) in pr1.iter().zip(pr4.iter()) {
        assert!((a - b).abs() < 1e-12);
    }
}
