//! End-to-end tests of the direction-optimized engine: the `VectorKind`
//! backends must be **bit-for-bit interchangeable** (push and pull reduce
//! each destination's messages in the same ascending-source order), and the
//! `Auto` selector must actually flip between them where the workload's
//! frontier density says it should.
//!
//! Property-style coverage follows the repo's offline convention: instead of
//! `proptest`, deterministic RMAT and grid graphs are swept across every
//! edge direction, vector kind and thread count, so failures reproduce
//! exactly from the case labels in the assertion messages.

use graphmat::prelude::*;
use graphmat_io::{grid, rmat};
use std::sync::Arc;

/// A weighted program parametrized over its scatter direction, chosen so
/// every callback output depends on the message, the edge value *and* the
/// destination property — any backend disagreement shows up immediately.
struct DirectedRelax {
    direction: EdgeDirection,
}

impl GraphProgram for DirectedRelax {
    type VertexProp = f32;
    type Message = f32;
    type Reduced = f32;
    type Edge = f32;

    fn direction(&self) -> EdgeDirection {
        self.direction
    }

    fn send_message(&self, _v: VertexId, dist: &f32) -> Option<f32> {
        if *dist < f32::MAX {
            Some(*dist)
        } else {
            None
        }
    }

    fn process_message(&self, msg: &f32, edge: &f32, dst: &f32) -> f32 {
        // Non-trivial use of all three inputs (and non-commutative in the
        // destination read): relax, slightly biased by the current value.
        let candidate = msg + edge;
        if *dst < f32::MAX {
            candidate.min(*dst + 0.25)
        } else {
            candidate
        }
    }

    fn reduce(&self, acc: &mut f32, value: f32) {
        if value < *acc {
            *acc = value;
        }
    }

    fn apply(&self, reduced: &f32, dist: &mut f32) {
        if *reduced < *dist {
            *dist = *reduced;
        }
    }
}

fn test_graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        (
            "rmat",
            rmat::generate(&RmatConfig::graph500(9).with_seed(42)),
        ),
        ("grid", grid::generate(&GridConfig::square(24).with_seed(7))),
    ]
}

/// The satellite property test: `Auto` is bit-identical to every forced
/// kind across RMAT + grid graphs, all three `EdgeDirection`s, 1 and 4
/// threads. f32 comparisons are exact (`==` via `Vec<f32>` equality): the
/// backends must agree to the last ulp, not approximately.
#[test]
fn auto_is_bit_identical_to_every_forced_backend() {
    for (graph_name, edges) in test_graphs() {
        for threads in [1usize, 4] {
            let session = Session::with_threads(threads).unwrap();
            let topo = session.build_graph(&edges).partitions(8).finish().unwrap();
            for direction in [EdgeDirection::Out, EdgeDirection::In, EdgeDirection::Both] {
                let run = |kind: VectorKind| {
                    session
                        .run(&*topo, DirectedRelax { direction })
                        .init_all(f32::MAX)
                        .seed_with(0, 0.0)
                        .seed_with(1, 0.5)
                        .vector(kind)
                        .max_iterations(64)
                        .execute()
                        .unwrap()
                };
                let auto = run(VectorKind::Auto);
                for forced in [VectorKind::Bitvector, VectorKind::Sorted, VectorKind::Dense] {
                    let out = run(forced);
                    assert_eq!(
                        auto.values, out.values,
                        "{graph_name}, {threads} threads, {direction:?}, Auto vs {forced:?}"
                    );
                }
                // The forced-dense run must actually have pulled every
                // superstep, and forced-push runs never pull.
                assert_eq!(
                    run(VectorKind::Dense).stats.pull_supersteps,
                    run(VectorKind::Dense).stats.iterations,
                    "{graph_name} {direction:?}"
                );
                assert_eq!(run(VectorKind::Bitvector).stats.pull_supersteps, 0);
            }
        }
    }
}

/// The satellite unit test: on an RMAT graph the BFS frontier starts tiny
/// (push), explodes through the middle supersteps (pull) and dies out again
/// (push) — the selector must visibly flip, and the distances must still be
/// exactly the reference BFS.
#[test]
fn selector_flips_direction_across_bfs_supersteps() {
    let edges = rmat::generate(&RmatConfig::graph500(10).with_seed(21));
    let session = Session::with_threads(2).unwrap();
    let topo = session
        .build_graph(&edges.symmetrized())
        .in_edges(false)
        .finish()
        .unwrap();
    let out = bfs_on(&session, &topo, 1).unwrap();
    assert_eq!(
        out.values,
        graphmat_algorithms::bfs::bfs_reference(&edges, 1, true)
    );

    let backends: Vec<Backend> = out.stats.supersteps.iter().map(|s| s.backend).collect();
    assert!(
        backends.first() == Some(&Backend::Push),
        "superstep 0 (single-vertex frontier) must push: {backends:?}"
    );
    assert!(
        backends.contains(&Backend::Pull),
        "the dense middle of the BFS must select pull: {backends:?}"
    );
    assert!(
        backends.last() == Some(&Backend::Push),
        "the dying frontier of the final superstep must push again: {backends:?}"
    );
    assert_eq!(
        out.stats.pull_supersteps,
        backends.iter().filter(|b| **b == Backend::Pull).count()
    );
    // The recorded frontier densities justify the choices: every pull
    // superstep saw a denser frontier than the sparsest push superstep.
    for s in &out.stats.supersteps {
        assert!((0.0..=1.0).contains(&s.frontier_density), "{s:?}");
    }
}

/// PageRank activates every vertex every superstep — the canonical
/// dense-frontier workload. Under `Auto` it must settle on the pull backend
/// while producing exactly the push ranks.
#[test]
fn pagerank_selects_pull_on_every_superstep() {
    let edges = rmat::generate(&RmatConfig::graph500(9).with_seed(5));
    let session = Session::with_threads(2).unwrap();
    let topo = session
        .build_graph(&edges)
        .in_edges(false)
        .finish()
        .unwrap();
    let cfg = PageRankConfig::default();
    let auto = pagerank_on(&session, &topo, &cfg).unwrap();
    assert_eq!(
        auto.stats.pull_supersteps, auto.stats.iterations,
        "every all-vertices-active superstep should pull"
    );
    for s in &auto.stats.supersteps {
        assert_eq!(s.backend, Backend::Pull);
        assert_eq!(s.frontier_density, 1.0);
    }

    // Bit-for-bit against the legacy always-push facade on an identically
    // built graph.
    let push = pagerank(
        &edges,
        &cfg,
        &RunOptions::default()
            .with_threads(2)
            .with_vector(VectorKind::Bitvector),
    );
    assert_eq!(auto.values, push.values);
    assert_eq!(push.stats.pull_supersteps, 0);
}

/// All eight packaged algorithms, run through session drivers (Auto) and
/// compared bit-for-bit against their forced-push legacy facades — the
/// acceptance bar of the direction-optimization PR.
#[test]
fn all_algorithms_agree_between_auto_and_forced_push() {
    let edges = rmat::generate(&RmatConfig::graph500(8).with_seed(33));
    let push_opts = RunOptions::default()
        .with_threads(2)
        .with_vector(VectorKind::Bitvector);
    let session = Session::with_threads(2).unwrap();

    // BFS / CC run on the symmetrized graph, like their facades do.
    let sym_topo = session
        .build_graph(&edges.symmetrized().topology())
        .finish()
        .unwrap();
    assert_eq!(
        bfs_on(&session, &sym_topo, 0).unwrap().values,
        bfs(&edges.topology(), &BfsConfig::from_root(0), &push_opts).values,
        "bfs"
    );
    assert_eq!(
        connected_components_on(&session, &sym_topo).unwrap().values,
        connected_components(&edges.topology(), &CcConfig::default(), &push_opts).values,
        "connected components"
    );

    let topo = session.build_graph(&edges).finish().unwrap();
    assert_eq!(
        sssp_on(&session, &topo, 0).unwrap().values,
        sssp(&edges, &SsspConfig::from_source(0), &push_opts).values,
        "sssp"
    );
    assert_eq!(
        pagerank_on(&session, &topo, &PageRankConfig::default())
            .unwrap()
            .values,
        pagerank(&edges, &PageRankConfig::default(), &push_opts).values,
        "pagerank"
    );
    assert_eq!(
        delta_pagerank_on(&session, &topo, &DeltaPageRankConfig::default())
            .unwrap()
            .values,
        delta_pagerank(&edges, &DeltaPageRankConfig::default(), &push_opts).values,
        "delta pagerank"
    );
    assert_eq!(
        in_degrees_on(&session, &topo).unwrap().values,
        in_degrees(&edges, &push_opts).values,
        "in-degrees"
    );
    assert_eq!(
        out_degrees_on(&session, &topo).unwrap().values,
        out_degrees(&edges, &push_opts).values,
        "out-degrees"
    );

    let tc_edges = rmat::generate(&RmatConfig::triangle_counting(7).with_seed(3));
    let tc_topo = session
        .build_graph(&tc_edges.to_dag())
        .in_edges(false)
        .finish()
        .unwrap();
    assert_eq!(
        total_triangles(&triangle_count_on(&session, &tc_topo).unwrap()),
        total_triangles(&triangle_count(
            &tc_edges,
            &TriangleCountConfig::default(),
            &push_opts
        )),
        "triangle count"
    );

    let ratings =
        graphmat_io::bipartite::generate(&BipartiteConfig::netflix_like(64, 48, 600).with_seed(9));
    let cf_cfg = CfConfig {
        latent_dims: 8,
        iterations: 3,
        ..Default::default()
    };
    let cf_topo = session.build_graph(&ratings.edges).finish().unwrap();
    let auto_cf = collaborative_filtering_on(&session, &cf_topo, &cf_cfg).unwrap();
    let push_cf = collaborative_filtering(&ratings, &cf_cfg, &push_opts);
    assert_eq!(auto_cf.values, push_cf.values, "collaborative filtering");
}

/// Pooled states + workspace recycling across backend switches: rerunning
/// through one state with different forced kinds must keep results identical
/// and never corrupt the cached workspace.
#[test]
fn pooled_state_survives_backend_switches() {
    let edges = rmat::generate(&RmatConfig::graph500(8).with_seed(11));
    let session = Session::with_threads(2).unwrap();
    let topo: Arc<Topology<f32>> = session.build_graph(&edges).finish().unwrap();
    let mut state: VertexState<f32> = VertexState::for_topology(&topo);

    let mut results: Vec<Vec<f32>> = Vec::new();
    for kind in [
        VectorKind::Auto,
        VectorKind::Dense,
        VectorKind::Bitvector,
        VectorKind::Auto,
        VectorKind::Sorted,
    ] {
        session
            .run(
                &*topo,
                DirectedRelax {
                    direction: EdgeDirection::Out,
                },
            )
            .init_all(f32::MAX)
            .seed_with(0, 0.0)
            .vector(kind)
            .max_iterations(64)
            .execute_with(&mut state)
            .unwrap();
        results.push(state.properties().to_vec());
    }
    for w in results.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}
