//! Integration tests of engine-level behaviour that the paper calls out:
//! the SpMV dominating runtime, frontier-driven work, the active-set
//! machinery, and the MatrixMarket loading path end to end.

use graphmat::io::{datasets, mtx};
use graphmat::prelude::*;
use graphmat_io::datasets::{DatasetId, DatasetScale};

#[test]
fn spmv_dominates_pagerank_runtime() {
    // §5.4: "most (over 80%) of the time is spent in the Generalized SPMV".
    // At tiny scales the constant overheads weigh more, so require a majority
    // rather than the full 80%.
    let edges = datasets::load(DatasetId::RmatGraph500, DatasetScale::Tiny);
    let out = pagerank(
        &edges,
        &PageRankConfig {
            iterations: 10,
            ..Default::default()
        },
        &RunOptions::default(),
    );
    assert!(
        out.stats.spmv_fraction() > 0.5,
        "SpMV fraction was only {:.1}%",
        out.stats.spmv_fraction() * 100.0
    );
}

#[test]
fn sssp_on_road_network_takes_many_cheap_iterations() {
    // The Figure 4e discussion: road networks need many supersteps, each
    // doing little work — exactly where per-iteration overhead matters.
    // (A pure grid without highway shortcuts keeps the hop counts high.)
    let edges = graphmat::io::grid::generate(&graphmat::io::grid::GridConfig {
        removal_fraction: 0.05,
        num_shortcuts: 0,
        ..graphmat::io::grid::GridConfig::square(40)
    });
    let out = sssp(&edges, &SsspConfig::from_source(0), &RunOptions::default());
    assert!(out.converged);
    assert!(
        out.stats.iterations > 20,
        "expected a high-diameter run, got {} supersteps",
        out.stats.iterations
    );
    let max_frontier = out
        .stats
        .supersteps
        .iter()
        .map(|s| s.active_vertices)
        .max()
        .unwrap();
    assert!(
        max_frontier < edges.num_vertices() as usize / 2,
        "frontier should stay well below the vertex count"
    );
}

#[test]
fn bfs_on_social_graph_finishes_in_few_supersteps() {
    // Small-world graphs have tiny diameters, the opposite regime.
    let edges = datasets::load(DatasetId::FacebookLike, DatasetScale::Tiny);
    let out = bfs(&edges, &BfsConfig::from_root(0), &RunOptions::default());
    assert!(out.converged);
    assert!(
        out.stats.iterations <= 12,
        "social graph BFS took {} supersteps",
        out.stats.iterations
    );
}

#[test]
fn mtx_roundtrip_feeds_the_engine() {
    // Write a graph to MatrixMarket, read it back, and get identical results
    // — the original GraphMat's ReadMTX ingestion path.
    let edges = datasets::load(DatasetId::FlickrLike, DatasetScale::Tiny);
    let mut buffer = Vec::new();
    mtx::write(&edges, &mut buffer).unwrap();
    let reloaded = mtx::read(buffer.as_slice()).unwrap();
    assert_eq!(reloaded.num_edges(), edges.num_edges());

    let a = sssp(&edges, &SsspConfig::from_source(0), &RunOptions::default());
    let b = sssp(
        &reloaded,
        &SsspConfig::from_source(0),
        &RunOptions::default(),
    );
    assert_eq!(a.values, b.values);
}

#[test]
fn run_stats_account_for_all_supersteps() {
    let edges = datasets::load(DatasetId::WikipediaLike, DatasetScale::Tiny);
    let out = bfs(&edges, &BfsConfig::from_root(2), &RunOptions::default());
    assert_eq!(out.stats.supersteps.len(), out.stats.iterations);
    let edge_sum: u64 = out.stats.supersteps.iter().map(|s| s.edges_processed).sum();
    assert_eq!(edge_sum, out.stats.edges_processed);
    let msg_sum: u64 = out
        .stats
        .supersteps
        .iter()
        .map(|s| s.messages_sent as u64)
        .sum();
    assert_eq!(msg_sum, out.stats.messages_sent);
}

#[test]
fn delta_pagerank_touches_fewer_edges_than_fixed_iteration() {
    // The extension's point: convergence-driven activity saves work.
    let edges = datasets::load(DatasetId::LiveJournalLike, DatasetScale::Tiny);
    let fixed = pagerank(
        &edges,
        &PageRankConfig {
            iterations: 50,
            ..Default::default()
        },
        &RunOptions::default(),
    );
    let delta = delta_pagerank(
        &edges,
        &DeltaPageRankConfig {
            tolerance: 1e-6,
            max_iterations: 50,
            ..Default::default()
        },
        &RunOptions::default(),
    );
    assert!(delta.stats.edges_processed < fixed.stats.edges_processed);
}

#[test]
fn cost_counters_scale_with_graph_size() {
    let small = datasets::load(DatasetId::FacebookLike, DatasetScale::Tiny);
    let out = pagerank(
        &small,
        &PageRankConfig {
            iterations: 3,
            ..Default::default()
        },
        &RunOptions::default(),
    );
    let counters = out.stats.to_cost_counters(12);
    assert!(counters.edge_ops >= small.num_edges() as u64);
    assert!(counters.bytes_read > counters.edge_ops);
}
