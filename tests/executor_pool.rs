//! Pool-executor correctness: final vertex properties must be invariant to
//! the thread count for every scatter direction and message-vector
//! representation, on a skewed RMAT graph large enough to trigger the
//! parallel SEND and APPLY paths (> 2048 active vertices).

use graphmat_core::program::{EdgeDirection, GraphProgram, VertexId};
use graphmat_core::{Graph, GraphBuildOptions, RunOptions, VectorKind};
use graphmat_io::rmat::{self, RmatConfig};

/// A direction-configurable program over integer state. `reduce` is
/// commutative and associative in `u64` (wrapping add), so any schedule must
/// produce bit-identical results.
struct Mixer {
    direction: EdgeDirection,
}

impl GraphProgram for Mixer {
    type VertexProp = u64;
    type Message = u64;
    type Reduced = u64;
    type Edge = f32;

    fn direction(&self) -> EdgeDirection {
        self.direction
    }

    fn send_message(&self, v: VertexId, prop: &u64) -> Option<u64> {
        // A few silent vertices keep the message vector properly sparse.
        if v % 17 == 3 {
            None
        } else {
            Some(prop.wrapping_mul(0x9e3779b97f4a7c15) ^ v as u64)
        }
    }

    fn process_message(&self, msg: &u64, _edge: &f32, dst_prop: &u64) -> u64 {
        msg.wrapping_add(*dst_prop).rotate_left(7)
    }

    fn reduce(&self, acc: &mut u64, value: u64) {
        *acc = acc.wrapping_add(value);
    }

    fn apply(&self, reduced: &u64, prop: &mut u64) {
        *prop = prop.wrapping_add(*reduced) | 1;
    }
}

fn run(direction: EdgeDirection, vector: VectorKind, threads: usize) -> Vec<u64> {
    // Scale 12 → 4096 vertices, comfortably above the 2048-vertex thresholds
    // that gate the parallel SEND and APPLY paths.
    let el = rmat::generate(&RmatConfig::graph500(12).with_seed(42));
    let mut g: Graph<u64> = Graph::from_edge_list(&el, GraphBuildOptions::default());
    g.init_properties(|v| v as u64 + 1);
    g.set_all_active();
    let result = graphmat_core::run_graph_program(
        &Mixer { direction },
        &mut g,
        &RunOptions::default()
            .with_threads(threads)
            .with_vector(vector)
            .with_activity(graphmat_core::ActivityPolicy::AlwaysAll)
            .with_max_iterations(4),
    );
    assert_eq!(result.stats.iterations, 4);
    assert_eq!(result.stats.nthreads, threads);
    g.properties().to_vec()
}

#[test]
fn thread_count_invariance_across_directions_and_vector_kinds() {
    for direction in [EdgeDirection::Out, EdgeDirection::In, EdgeDirection::Both] {
        for vector in [VectorKind::Bitvector, VectorKind::Sorted] {
            let sequential = run(direction, vector, 1);
            for threads in [2, 4, 7] {
                let parallel = run(direction, vector, threads);
                assert_eq!(
                    sequential, parallel,
                    "results diverged for {direction:?}/{vector:?} at {threads} threads"
                );
            }
        }
    }
}
