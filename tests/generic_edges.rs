//! Integration tests for the generic edge type flowing end to end:
//! unweighted (`()`) runs must agree with `f32` runs on the same topology,
//! integer weights must work through SSSP, and the unweighted fast path must
//! actually shed its edge value bytes.

use graphmat::prelude::*;
use graphmat_io::datasets::{load, DatasetId, DatasetScale};
use graphmat_io::uniform::{self, UniformConfig};

fn weighted_graph() -> EdgeList {
    load(DatasetId::FacebookLike, DatasetScale::Tiny)
}

#[test]
fn unweighted_bfs_matches_weighted_topology() {
    let weighted = weighted_graph();
    let unweighted: EdgeList<()> = weighted.topology();
    let cfg = BfsConfig::from_root(0);
    let a = bfs(&weighted, &cfg, &RunOptions::default());
    let b = bfs(&unweighted, &cfg, &RunOptions::default());
    assert_eq!(a.values, b.values);
    assert_eq!(a.stats.iterations, b.stats.iterations);
}

#[test]
fn unweighted_connected_components_match_weighted_topology() {
    let weighted = weighted_graph();
    let unweighted = weighted.topology();
    let a = connected_components(&weighted, &CcConfig::default(), &RunOptions::default());
    let b = connected_components(&unweighted, &CcConfig::default(), &RunOptions::default());
    assert_eq!(a.values, b.values);
}

#[test]
fn unweighted_degrees_match_weighted_topology() {
    let weighted = weighted_graph();
    let unweighted = weighted.topology();
    assert_eq!(
        in_degrees(&weighted, &RunOptions::sequential()).values,
        in_degrees(&unweighted, &RunOptions::sequential()).values,
    );
    assert_eq!(
        out_degrees(&weighted, &RunOptions::sequential()).values,
        out_degrees(&unweighted, &RunOptions::sequential()).values,
    );
}

#[test]
fn unweighted_triangle_count_matches_weighted_topology() {
    let weighted = load(DatasetId::RmatTriangle, DatasetScale::Tiny);
    let unweighted = weighted.topology();
    let cfg = TriangleCountConfig::default();
    let a = triangle_count(&weighted, &cfg, &RunOptions::default());
    let b = triangle_count(&unweighted, &cfg, &RunOptions::default());
    assert_eq!(a.values, b.values);
    assert!(total_triangles(&a) > 0);
}

#[test]
fn integer_weight_sssp_matches_f32() {
    // u32 edge weights end to end: generate integer weights, run both the
    // f32 and the u32 instantiations, plus the Dijkstra reference.
    let f32_edges = uniform::generate(
        &UniformConfig::new(200, 1500)
            .with_weights(1, 20)
            .with_seed(4),
    );
    let u32_edges: EdgeList<u32> = f32_edges.map_values(|_, _, w| *w as u32);
    let cfg = SsspConfig::from_source(7);
    let from_f32 = sssp(&f32_edges, &cfg, &RunOptions::default().with_threads(4));
    let from_u32 = sssp(&u32_edges, &cfg, &RunOptions::default().with_threads(4));
    assert_eq!(from_f32.values, from_u32.values);
    let reference = graphmat_algorithms::sssp::sssp_reference(&u32_edges, 7);
    for (v, (a, b)) in from_u32.values.iter().zip(reference.iter()).enumerate() {
        assert!((a - b).abs() < 1e-4, "vertex {v}: {a} vs {b}");
    }
}

#[test]
fn unweighted_sssp_counts_hops() {
    // () edges read as weight 1, so SSSP on EdgeList<()> is BFS hop counting.
    let edges = weighted_graph().symmetrized();
    let hops = sssp(
        &edges.topology(),
        &SsspConfig::from_source(0),
        &RunOptions::default(),
    );
    let levels = bfs(
        &edges.topology(),
        &BfsConfig {
            root: 0,
            symmetrize: false,
            ..Default::default()
        },
        &RunOptions::default(),
    );
    for (v, (d, l)) in hops.values.iter().zip(levels.values.iter()).enumerate() {
        if *l == u32::MAX {
            assert_eq!(*d, f32::MAX, "vertex {v}");
        } else {
            assert_eq!(*d, *l as f32, "vertex {v}");
        }
    }
}

#[test]
fn unweighted_matrices_store_no_value_bytes() {
    let weighted = weighted_graph();
    let unweighted = weighted.topology();
    let build = GraphBuildOptions::default().with_in_edges(false);
    let gw: Graph<u32, f32> = Graph::from_edge_list(&weighted, build);
    let gu: Graph<u32, ()> = Graph::from_edge_list(&unweighted, build);
    assert_eq!(gw.num_edges(), gu.num_edges());
    assert_eq!(
        gw.matrix_bytes() - gu.matrix_bytes(),
        gw.num_edges() * std::mem::size_of::<f32>(),
        "the unweighted graph must shed exactly 4 bytes per edge"
    );
}

#[test]
fn run_stats_surface_the_memory_saving() {
    let weighted = weighted_graph();
    let unweighted = weighted.topology();
    let cfg = BfsConfig::from_root(0);
    let a = bfs(&weighted, &cfg, &RunOptions::default());
    let b = bfs(&unweighted, &cfg, &RunOptions::default());
    assert!(a.stats.matrix_bytes > b.stats.matrix_bytes);
    assert!(b.stats.matrix_bytes > 0);
}

#[test]
fn struct_valued_edges_flow_through_the_engine() {
    // A custom edge struct: SSSP-style relaxation over a "road segment" that
    // carries both a length and a lane count, demonstrating that new edge
    // types need no backend changes.
    #[derive(Clone, Debug, PartialEq)]
    struct Road {
        length: f32,
        lanes: u8,
    }

    struct RoadSssp;

    impl GraphProgram for RoadSssp {
        type VertexProp = f32;
        type Message = f32;
        type Reduced = f32;
        type Edge = Road;

        fn send_message(&self, _v: VertexId, d: &f32) -> Option<f32> {
            Some(*d)
        }

        fn process_message(&self, msg: &f32, edge: &Road, _dst: &f32) -> f32 {
            // narrow roads cost double
            msg + edge.length * if edge.lanes < 2 { 2.0 } else { 1.0 }
        }

        fn reduce(&self, acc: &mut f32, v: f32) {
            if v < *acc {
                *acc = v;
            }
        }

        fn apply(&self, r: &f32, d: &mut f32) {
            if *r < *d {
                *d = *r;
            }
        }
    }

    let edges: EdgeList<Road> = EdgeList::from_tuples(
        3,
        vec![
            (
                0,
                1,
                Road {
                    length: 1.0,
                    lanes: 1,
                },
            ), // effective 2.0
            (
                0,
                2,
                Road {
                    length: 3.0,
                    lanes: 4,
                },
            ), // effective 3.0
            (
                1,
                2,
                Road {
                    length: 0.5,
                    lanes: 2,
                },
            ), // effective 0.5
        ],
    );
    let mut graph: Graph<f32, Road> =
        Graph::from_edge_list(&edges, GraphBuildOptions::default().with_partitions(2));
    graph.set_all_properties(f32::MAX);
    graph.set_property(0, 0.0);
    graph.set_active(0);
    let result = run_graph_program(&RoadSssp, &mut graph, &RunOptions::sequential());
    assert!(result.converged);
    assert_eq!(*graph.property(1), 2.0);
    assert_eq!(*graph.property(2), 2.5); // 0->1->2 beats the direct wide road
}
