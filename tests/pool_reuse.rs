//! Proof that the superstep loop never spawns threads: the only thread
//! spawns an executor ever performs happen at construction, and a run of
//! many supersteps on a shared executor moves the process-wide spawn counter
//! by exactly zero.
//!
//! This test deliberately lives in its own integration-test binary so no
//! concurrently running test can create executors and perturb the counter.

use graphmat_core::program::{GraphProgram, VertexId};
use graphmat_core::{ActivityPolicy, Graph, GraphBuildOptions, RunOptions};
use graphmat_io::rmat::{self, RmatConfig};
use graphmat_sparse::parallel::{threads_spawned_total, Executor};

struct Rank;

impl GraphProgram for Rank {
    type VertexProp = f64;
    type Message = f64;
    type Reduced = f64;
    type Edge = f32;

    fn send_message(&self, _v: VertexId, rank: &f64) -> Option<f64> {
        Some(*rank)
    }

    fn process_message(&self, msg: &f64, _edge: &f32, _dst: &f64) -> f64 {
        *msg
    }

    fn reduce(&self, acc: &mut f64, value: f64) {
        *acc += value;
    }

    fn apply(&self, reduced: &f64, rank: &mut f64) {
        *rank = 0.15 + 0.85 * *reduced;
    }
}

#[test]
fn superstep_loop_never_spawns_threads() {
    let el = rmat::generate(&RmatConfig::graph500(12).with_seed(9));
    let nthreads = 4;

    let before_pool = threads_spawned_total();
    let executor = Executor::new(nthreads);
    assert_eq!(
        executor.threads_spawned(),
        nthreads - 1,
        "a pooled executor spawns exactly nthreads - 1 workers (caller is lane 0)"
    );
    assert_eq!(threads_spawned_total(), before_pool + (nthreads - 1));

    // 60 supersteps with all vertices active, twice, on the same pool: the
    // old executor spawned (and joined) fresh OS threads for every SpMV,
    // SEND and APPLY dispatch — thousands of spawns for this workload.
    let before_run = threads_spawned_total();
    let options = RunOptions::default()
        .with_threads(nthreads)
        .with_activity(ActivityPolicy::AlwaysAll)
        .with_max_iterations(60);
    for _ in 0..2 {
        let mut g: Graph<f64> = Graph::from_edge_list(&el, GraphBuildOptions::default());
        g.set_all_properties(1.0);
        g.set_all_active();
        let result = graphmat_core::run_graph_program_with(&Rank, &mut g, &options, &executor);
        assert_eq!(result.stats.iterations, 60);
    }
    assert_eq!(
        threads_spawned_total(),
        before_run,
        "running 120 supersteps must not spawn a single thread"
    );
    assert_eq!(executor.threads_spawned(), nthreads - 1);
}
