//! Property-based tests over the whole stack: random graphs in, invariants
//! out. These complement the per-module proptests in `graphmat-sparse` by
//! exercising the public API end to end.

use graphmat::baselines::native;
use graphmat::prelude::*;
use proptest::prelude::*;

/// Strategy: a random directed graph as (vertex count, edge list).
fn arb_graph(max_vertices: u32, max_edges: usize) -> impl Strategy<Value = EdgeList> {
    (2..max_vertices).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 1u32..10), 1..max_edges).prop_map(move |edges| {
            let tuples: Vec<(u32, u32, f32)> = edges
                .into_iter()
                .filter(|(s, d, _)| s != d)
                .map(|(s, d, w)| (s, d, w as f32))
                .collect();
            EdgeList::from_tuples(n, tuples)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sssp_matches_dijkstra_on_random_graphs(edges in arb_graph(60, 300)) {
        let source = 0;
        let gm = sssp(&edges, &SsspConfig::from_source(source), &RunOptions::sequential());
        let reference = graphmat_algorithms::sssp::sssp_reference(&edges, source);
        for (v, (a, b)) in gm.values.iter().zip(reference.iter()).enumerate() {
            if *b == f32::MAX {
                prop_assert_eq!(*a, f32::MAX, "vertex {}", v);
            } else {
                prop_assert!((a - b).abs() < 1e-3, "vertex {}: {} vs {}", v, a, b);
            }
        }
    }

    #[test]
    fn bfs_distances_are_consistent_with_edges(edges in arb_graph(60, 300)) {
        let out = bfs(&edges, &BfsConfig::from_root(0), &RunOptions::sequential());
        let sym = edges.symmetrized();
        // triangle inequality over every (undirected) edge: |d(u) - d(v)| <= 1
        for &(u, v, _) in sym.edges() {
            let (du, dv) = (out.values[u as usize], out.values[v as usize]);
            if du != u32::MAX && dv != u32::MAX {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                // reachability is symmetric on a symmetrized graph
                prop_assert_eq!(du, dv);
            }
        }
        prop_assert_eq!(out.values[0], 0);
    }

    #[test]
    fn triangle_count_matches_bruteforce(edges in arb_graph(40, 200)) {
        let out = triangle_count(&edges, &TriangleCountConfig::default(), &RunOptions::sequential());
        let expected = graphmat_algorithms::triangle_count::triangle_count_reference(&edges);
        prop_assert_eq!(total_triangles(&out), expected);
    }

    #[test]
    fn connected_components_match_union_find(edges in arb_graph(60, 200)) {
        let out = connected_components(&edges, &CcConfig::default(), &RunOptions::sequential());
        let expected = graphmat_algorithms::connected_components::connected_components_reference(&edges);
        prop_assert_eq!(out.values, expected);
    }

    #[test]
    fn pagerank_matches_native_and_preserves_positivity(edges in arb_graph(50, 250)) {
        let iterations = 6;
        let gm = pagerank(&edges, &PageRankConfig { iterations, ..Default::default() },
                          &RunOptions::sequential());
        let nat = native::pagerank(&edges, 0.15, iterations, 1);
        for v in 0..edges.num_vertices() as usize {
            prop_assert!(gm.values[v] > 0.0);
            prop_assert!(gm.values[v].is_finite());
            if edges.in_degrees()[v] > 0 {
                prop_assert!((gm.values[v] - nat.values[v]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn degree_programs_match_edge_list(edges in arb_graph(50, 250)) {
        let ins = in_degrees(&edges, &RunOptions::sequential());
        let outs = out_degrees(&edges, &RunOptions::sequential());
        let expect_in: Vec<u64> = edges.in_degrees().iter().map(|&d| d as u64).collect();
        let expect_out: Vec<u64> = edges.out_degrees().iter().map(|&d| d as u64).collect();
        prop_assert_eq!(ins.values, expect_in);
        prop_assert_eq!(outs.values, expect_out);
    }

    #[test]
    fn parallel_run_equals_sequential_run(edges in arb_graph(50, 250)) {
        let seq = sssp(&edges, &SsspConfig::from_source(0), &RunOptions::sequential());
        let par = sssp(&edges, &SsspConfig::from_source(0), &RunOptions::default().with_threads(4));
        prop_assert_eq!(seq.values, par.values);
    }

    #[test]
    fn dispatch_and_vector_ablations_do_not_change_results(edges in arb_graph(40, 200)) {
        let base = sssp(&edges, &SsspConfig::from_source(0), &RunOptions::sequential());
        let dynamic = sssp(
            &edges,
            &SsspConfig::from_source(0),
            &RunOptions::sequential().with_dispatch(DispatchMode::Dynamic),
        );
        let sorted = sssp(
            &edges,
            &SsspConfig::from_source(0),
            &RunOptions::sequential().with_vector(VectorKind::Sorted),
        );
        prop_assert_eq!(&base.values, &dynamic.values);
        prop_assert_eq!(&base.values, &sorted.values);
    }
}
