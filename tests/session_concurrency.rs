//! Concurrency acceptance test for the `Session`/`Topology`/`VertexState`
//! redesign: N threads run N *different* vertex programs against one
//! `Arc<Topology>` through one shared `Session`, without cloning the matrix,
//! and every result matches the corresponding single-threaded-in-main run
//! **bit for bit**.
//!
//! Before the split this was impossible: `run_graph_program` took
//! `&mut Graph`, so two concurrent runs — even two read-only queries —
//! needed two copies of the adjacency matrices.

use graphmat::prelude::*;
use std::sync::Arc;

fn test_edges() -> (EdgeList<()>, EdgeList<()>) {
    let raw =
        graphmat::io::rmat::generate(&graphmat::io::rmat::RmatConfig::graph500(10).with_seed(42))
            .topology();
    (raw.symmetrized(), raw.to_dag())
}

#[test]
fn six_programs_run_concurrently_over_one_shared_topology() {
    let (sym_edges, dag_edges) = test_edges();
    let session = Session::with_threads(4).expect("session");
    // Two shared topologies: the symmetrized graph for the traversal /
    // ranking programs, the upper-triangle DAG for triangle counting.
    let topo: Arc<Topology<()>> = session.build_graph(&sym_edges).finish().expect("topology");
    let dag: Arc<Topology<()>> = session
        .build_graph(&dag_edges)
        .in_edges(false)
        .finish()
        .expect("dag topology");

    let pr_cfg = PageRankConfig {
        iterations: 10,
        ..Default::default()
    };
    let dpr_cfg = DeltaPageRankConfig::default();

    // Baseline: every program once, sequentially from the main thread,
    // through the SAME session and topologies the concurrent phase uses.
    let seq_bfs = bfs_on(&session, &topo, 1).unwrap().values;
    let seq_pr = pagerank_on(&session, &topo, &pr_cfg).unwrap().values;
    let seq_cc = connected_components_on(&session, &topo).unwrap().values;
    let seq_sssp = sssp_on(&session, &topo, 3).unwrap().values;
    let seq_dpr = delta_pagerank_on(&session, &topo, &dpr_cfg).unwrap().values;
    let seq_tri = triangle_count_on(&session, &dag).unwrap().values;

    // Concurrent phase: six threads, six different programs, one session,
    // shared topologies. The pool was built at Session::new — concurrency
    // must not spawn a single new OS thread anywhere in the process (a
    // regression to per-run executors would), and Arc sharing means the
    // matrices are never cloned. The process-global spawn counter is safe
    // to assert on here because the only other test in this binary uses
    // Session::sequential(), which spawns nothing.
    assert_eq!(
        session.executor().threads_spawned(),
        3,
        "4 lanes = caller + 3 pool threads"
    );
    let spawned_before = graphmat::sparse::parallel::threads_spawned_total();
    let runs = 3; // several rounds per thread to maximise interleaving
    let (bfs_r, pr_r, cc_r, sssp_r, dpr_r, tri_r) = std::thread::scope(|s| {
        let session = &session;
        let bfs_h = s.spawn(|| {
            (0..runs)
                .map(|_| bfs_on(session, &topo, 1).unwrap().values)
                .collect::<Vec<_>>()
        });
        let pr_h = s.spawn(|| {
            (0..runs)
                .map(|_| pagerank_on(session, &topo, &pr_cfg).unwrap().values)
                .collect::<Vec<_>>()
        });
        let cc_h = s.spawn(|| {
            (0..runs)
                .map(|_| connected_components_on(session, &topo).unwrap().values)
                .collect::<Vec<_>>()
        });
        let sssp_h = s.spawn(|| {
            (0..runs)
                .map(|_| sssp_on(session, &topo, 3).unwrap().values)
                .collect::<Vec<_>>()
        });
        let dpr_h = s.spawn(|| {
            (0..runs)
                .map(|_| delta_pagerank_on(session, &topo, &dpr_cfg).unwrap().values)
                .collect::<Vec<_>>()
        });
        let tri_h = s.spawn(|| {
            (0..runs)
                .map(|_| triangle_count_on(session, &dag).unwrap().values)
                .collect::<Vec<_>>()
        });
        (
            bfs_h.join().unwrap(),
            pr_h.join().unwrap(),
            cc_h.join().unwrap(),
            sssp_h.join().unwrap(),
            dpr_h.join().unwrap(),
            tri_h.join().unwrap(),
        )
    });
    assert_eq!(
        graphmat::sparse::parallel::threads_spawned_total(),
        spawned_before,
        "concurrent runs must reuse the session's pool — no executor \
         anywhere may spawn a thread during the concurrent phase"
    );

    // Bit-for-bit agreement with the sequential baselines, every round.
    for round in 0..runs {
        assert_eq!(bfs_r[round], seq_bfs, "BFS round {round}");
        assert_eq!(pr_r[round], seq_pr, "PageRank round {round}");
        assert_eq!(cc_r[round], seq_cc, "CC round {round}");
        assert_eq!(sssp_r[round], seq_sssp, "SSSP round {round}");
        assert_eq!(dpr_r[round], seq_dpr, "delta-PageRank round {round}");
        assert_eq!(tri_r[round], seq_tri, "triangles round {round}");
    }

    // Cross-check two of the baselines against independent references.
    assert_eq!(
        seq_bfs,
        graphmat::algorithms::bfs::bfs_reference(&sym_edges, 1, false)
    );
    assert_eq!(
        seq_cc,
        graphmat::algorithms::connected_components::connected_components_reference(&sym_edges)
    );
}

#[test]
fn concurrent_hand_written_programs_share_a_topology() {
    // Same property at the `session.run(...)` builder level, with a
    // hand-written program: 8 threads, 8 different seeds, one topology.
    struct Hops;
    impl GraphProgram for Hops {
        type VertexProp = u32;
        type Message = u32;
        type Reduced = u32;
        type Edge = ();
        fn send_message(&self, _v: VertexId, d: &u32) -> Option<u32> {
            Some(*d)
        }
        fn process_message(&self, m: &u32, _e: &(), _d: &u32) -> u32 {
            m.saturating_add(1)
        }
        fn reduce(&self, acc: &mut u32, v: u32) {
            *acc = (*acc).min(v);
        }
        fn apply(&self, r: &u32, d: &mut u32) {
            *d = (*d).min(*r);
        }
    }

    // Sequential session: spawns no pool threads, which keeps the other
    // test's process-global spawn-counter assertion race-free — and the
    // user threads below are still genuinely concurrent over one topology.
    let (sym_edges, _) = test_edges();
    let session = Session::sequential();
    let topo = session
        .build_graph(&sym_edges)
        .in_edges(false)
        .finish()
        .unwrap();

    let run_from = |root: VertexId| {
        session
            .run(&*topo, Hops)
            .init_all(u32::MAX)
            .seed_with(root, 0)
            .execute()
            .unwrap()
            .values
    };
    let expected: Vec<Vec<u32>> = (0..8).map(run_from).collect();
    let concurrent: Vec<Vec<u32>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8u32)
            .map(|root| s.spawn(move || run_from(root)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(expected, concurrent);
}
