//! Pooled-state acceptance test: one `VertexState` (and the engine
//! `Workspace` cached inside it) is reused across runs through
//! `RunBuilder::execute_with`, and every rerun is identical to a fresh-state
//! run — no stale active bits or properties leak through, no buffers are
//! reallocated.

use graphmat::prelude::*;

/// A high-diameter weighted road grid: SSSP runs many supersteps here, so
/// stale state (a leftover active bit would relaunch a frontier; a leftover
/// distance would short-circuit relaxation) cannot hide.
fn road_edges() -> EdgeList<f32> {
    graphmat::io::grid::generate(&GridConfig {
        removal_fraction: 0.05,
        num_shortcuts: 4,
        ..GridConfig::square(40)
    })
}

#[test]
fn sssp_rerun_through_one_pooled_state_matches_fresh_state_runs() {
    let edges = road_edges();
    let session = Session::with_threads(2).expect("session");
    let topo = session
        .build_graph(&edges)
        .in_edges(false)
        .finish()
        .expect("topology");

    struct SsspLike;
    impl GraphProgram for SsspLike {
        type VertexProp = f32;
        type Message = f32;
        type Reduced = f32;
        type Edge = f32;
        fn send_message(&self, _v: VertexId, d: &f32) -> Option<f32> {
            Some(*d)
        }
        fn process_message(&self, m: &f32, e: &f32, _d: &f32) -> f32 {
            m + e
        }
        fn reduce(&self, acc: &mut f32, v: f32) {
            if v < *acc {
                *acc = v;
            }
        }
        fn apply(&self, r: &f32, d: &mut f32) {
            if *r < *d {
                *d = *r;
            }
        }
    }

    let fresh = |source: VertexId| {
        session
            .run(&*topo, SsspLike)
            .init_all(f32::MAX)
            .seed_with(source, 0.0)
            .execute()
            .unwrap()
    };
    let pooled = |state: &mut VertexState<f32>, source: VertexId| {
        session
            .run(&*topo, SsspLike)
            .init_all(f32::MAX)
            .seed_with(source, 0.0)
            .execute_with(state)
            .unwrap()
    };

    let mut state: VertexState<f32> = VertexState::for_topology(&topo);
    assert!(!state.has_cached_workspace());

    // Run 1 (cold state) vs fresh: identical.
    let fresh_a = fresh(0);
    let pooled_a = pooled(&mut state, 0);
    assert_eq!(state.properties(), &fresh_a.values[..]);
    assert_eq!(pooled_a.stats.iterations, fresh_a.stats.iterations);
    assert!(
        state.has_cached_workspace(),
        "the run's workspace must be cached for the next run"
    );
    assert!(
        fresh_a.stats.iterations > 20,
        "grid SSSP must run many supersteps for this test to mean anything"
    );

    // Run 2: SAME state, SAME workspace, different source. If any active
    // bit or distance leaked from run 1, these values would differ.
    let source_b = 40 * 40 - 1; // opposite corner
    let fresh_b = fresh(source_b);
    pooled(&mut state, source_b);
    assert_eq!(
        state.properties(),
        &fresh_b.values[..],
        "second pooled run must be bit-identical to a fresh-state run"
    );

    // Run 3: back to the first source — full round trip through the pool.
    pooled(&mut state, 0);
    assert_eq!(state.properties(), &fresh_a.values[..]);
}

#[test]
fn workspace_cache_is_dropped_when_the_program_type_changes() {
    let edges = road_edges().topology();
    let session = Session::sequential();
    let topo = session
        .build_graph(&edges)
        .in_edges(false)
        .finish()
        .unwrap();

    struct MinHops;
    impl GraphProgram for MinHops {
        type VertexProp = u32;
        type Message = u32;
        type Reduced = u32;
        type Edge = ();
        fn send_message(&self, _v: VertexId, d: &u32) -> Option<u32> {
            Some(*d)
        }
        fn process_message(&self, m: &u32, _e: &(), _d: &u32) -> u32 {
            m.saturating_add(1)
        }
        fn reduce(&self, acc: &mut u32, v: u32) {
            *acc = (*acc).min(v);
        }
        fn apply(&self, r: &u32, d: &mut u32) {
            *d = (*d).min(*r);
        }
    }

    /// Same state type (u32) but a different program type: the cached
    /// workspace of `MinHops` must not be handed to `MaxLabel`.
    struct MaxLabel;
    impl GraphProgram for MaxLabel {
        type VertexProp = u32;
        type Message = u32;
        type Reduced = u32;
        type Edge = ();
        fn send_message(&self, _v: VertexId, l: &u32) -> Option<u32> {
            Some(*l)
        }
        fn process_message(&self, m: &u32, _e: &(), _d: &u32) -> u32 {
            *m
        }
        fn reduce(&self, acc: &mut u32, v: u32) {
            *acc = (*acc).max(v);
        }
        fn apply(&self, r: &u32, l: &mut u32) {
            if *r > *l {
                *l = *r;
            }
        }
    }

    let mut state: VertexState<u32> = VertexState::for_topology(&topo);
    session
        .run(&*topo, MinHops)
        .init_all(u32::MAX)
        .seed_with(0, 0)
        .execute_with(&mut state)
        .unwrap();
    let hops = state.properties().to_vec();

    // Different program, same pooled state: must still be correct.
    session
        .run(&*topo, MaxLabel)
        .init_with(|v| v)
        .activate_all()
        .execute_with(&mut state)
        .unwrap();
    let labels = state.properties().to_vec();
    let expected_max = topo.num_vertices() - 1;
    // The grid is (nearly) connected; the max label floods everywhere it
    // can reach. Compare against a fresh-state run of the same program.
    let fresh = session
        .run(&*topo, MaxLabel)
        .init_with(|v| v)
        .activate_all()
        .execute()
        .unwrap();
    assert_eq!(labels, fresh.values);
    assert!(labels.contains(&expected_max));

    // And back to the first program type once more.
    session
        .run(&*topo, MinHops)
        .init_all(u32::MAX)
        .seed_with(0, 0)
        .execute_with(&mut state)
        .unwrap();
    assert_eq!(state.properties(), &hops[..]);
}
