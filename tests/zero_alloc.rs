//! Direct proof of the allocation-budget claim: a warmed superstep loop and
//! a warmed server round perform **zero** heap allocation.
//!
//! The engine's design doc (and `tests/pool_reuse.rs`) argue this indirectly
//! through pool counters; here the claim is enforced at the allocator
//! boundary. `graphmat_audit::alloc_track::CountingAllocator` is installed
//! as this binary's global allocator, and the steady-state regions are
//! measured with `AllocGuard` — any alloc / dealloc / realloc anywhere in
//! the process during the measured window fails the test.
//!
//! The counters are process-global, so this binary contains exactly one
//! `#[test]` (see the module docs of `alloc_track`).
//!
//! Skipped under `--features shard-check`: the race detector deliberately
//! allocates shadow claim maps inside the instrumented regions, which is
//! exactly the overhead the default build must not pay — this test is the
//! proof that it doesn't.

#![cfg(not(feature = "shard-check"))]

use graphmat_audit::alloc_track::{AllocGuard, CountingAllocator};
use graphmat_core::program::{GraphProgram, VertexId};
use graphmat_core::{ActivityPolicy, RunOptions, Session, SessionOptions, VertexState};
use graphmat_io::rmat::{self, RmatConfig};
use graphmat_server::protocol::{Algorithm, RunRequest, Status};
use graphmat_server::service::{self, GraphService, WorkerStates};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Minimal PageRank-shaped program: every vertex broadcasts its rank each
/// superstep (`AlwaysAll`), so 100 iterations exercise SEND, SpMV and APPLY
/// on every superstep.
struct Rank;

impl GraphProgram for Rank {
    type VertexProp = f64;
    type Message = f64;
    type Reduced = f64;
    type Edge = f32;

    fn send_message(&self, _v: VertexId, rank: &f64) -> Option<f64> {
        Some(*rank)
    }

    fn process_message(&self, msg: &f64, _edge: &f32, _dst: &f64) -> f64 {
        *msg
    }

    fn reduce(&self, acc: &mut f64, value: f64) {
        *acc += value;
    }

    fn apply(&self, reduced: &f64, rank: &mut f64) {
        *rank = 0.15 + 0.85 * *reduced;
    }
}

#[test]
fn warmed_supersteps_and_server_rounds_allocate_nothing() {
    let el = rmat::generate(&RmatConfig::graph500(10).with_seed(7));
    let session = match Session::new(
        SessionOptions::default()
            .with_threads(4)
            // Superstep detail is the one per-iteration heap consumer the
            // options expose; the zero-alloc serving configuration turns
            // it off.
            .with_run_defaults(RunOptions {
                record_supersteps: false,
                ..RunOptions::default()
            }),
    ) {
        Ok(s) => s,
        Err(e) => panic!("session: {e}"),
    };
    let topo = match session.build_graph(&el).finish() {
        Ok(t) => t,
        Err(e) => panic!("build: {e}"),
    };

    // ---- Part 1: 100 pooled supersteps through the engine front-end. ----
    let mut state: VertexState<f64> = VertexState::for_topology(&topo);
    let run = |state: &mut VertexState<f64>| {
        session
            .run(&topo, Rank)
            .init_all(1.0)
            .activate_all()
            .activity(ActivityPolicy::AlwaysAll)
            .max_iterations(100)
            .execute_with(state)
    };
    // Warm-up run allocates the cached workspace inside the state.
    match run(&mut state) {
        Ok(r) => assert_eq!(r.stats.iterations, 100),
        Err(e) => panic!("warm-up run: {e}"),
    }
    let (outcome, stats) = AllocGuard::measure(|| run(&mut state));
    match outcome {
        Ok(r) => assert_eq!(r.stats.iterations, 100),
        Err(e) => panic!("measured run: {e}"),
    }
    assert!(
        !stats.any(),
        "100 warmed supersteps must not touch the heap, got {stats:?}"
    );

    // ---- Part 2: steady-state server rounds, in-process. ----
    let service = GraphService::new(session, topo);
    let mut states = WorkerStates::for_topology(service.topology());
    let request = RunRequest::new(Algorithm::PageRank)
        .iterations(5)
        .include_values(true);
    let mut buf: Vec<u8> = Vec::new();
    // Two warm-up rounds: the first creates the pooled PageRank state and
    // sizes the response buffer, the second proves acquire/release recycles.
    for round in 0..2 {
        buf.clear();
        let status = service::execute_run(&service, &mut states, &request, None, &mut buf).status;
        assert_eq!(status, Status::Ok, "warm-up round {round}");
    }
    let created_after_warmup = states.created();
    let (_, stats) = AllocGuard::measure(|| {
        for _ in 0..10 {
            buf.clear();
            let status =
                service::execute_run(&service, &mut states, &request, None, &mut buf).status;
            assert_eq!(status, Status::Ok);
        }
    });
    assert!(
        !stats.any(),
        "10 steady-state server rounds must not touch the heap, got {stats:?}"
    );
    assert_eq!(
        states.created(),
        created_after_warmup,
        "steady-state rounds must recycle pooled states, not create new ones"
    );
    assert!(!buf.is_empty(), "rounds actually produced responses");
}
